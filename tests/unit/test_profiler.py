"""Hot-path profiler: deltas, span tree, flamegraph, report, CLI."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro import obs
from repro.apps import get_app
from repro.experiments.cli import main
from repro.fi.campaign import Deployment, run_campaign
from repro.obs.events import CampaignProfile, event_from_dict
from repro.obs.profiler import (
    FRAME_TOTAL_KIND,
    OP_KINDS,
    ProfileScope,
    build_tree,
    coverage,
    flamegraph_frames,
    live_profile_event,
    merge_profile_events,
    profile_rows,
    profiles_of,
    render_profile_report,
    render_profile_svg,
    traced_op_share,
)
from repro.obs.sinks import JsonlSink, MemorySink


def _event(spans=None, ops=None, app="demo", wall=None):
    spans = spans if spans is not None else {
        "campaign": [1, 1.0],
        "campaign/profile": [1, 0.1],
        "campaign/trial": [4, 0.85],
        "campaign/trial/inject": [4, 0.8],
    }
    ops = ops if ops is not None else [
        {"phase": "campaign/trial/inject/advance", "kind": "add",
         "rank": 0, "ops": 1000, "calls": 10, "seconds": 0.3},
        {"phase": "campaign/trial/inject/advance", "kind": "mul",
         "rank": 1, "ops": 500, "calls": 10, "seconds": 0.2},
        {"phase": "campaign/trial/inject/advance", "kind": FRAME_TOTAL_KIND,
         "rank": 0, "ops": 40, "calls": 8, "seconds": 0.7},
    ]
    if wall is None:
        wall = spans.get("campaign", [0, 0.0])[1]
    return CampaignProfile(app=app, wall_s=wall, spans=spans, ops=ops)


class TestRecorderProfiling:
    def test_profile_op_accumulates_under_span_and_frame(self):
        rec = obs.Recorder(enabled=True, profiling=True)
        with rec.span("campaign"):
            rec.push_frame("advance")
            rec.profile_op("add", 0, 100, 0.5)
            rec.profile_op("add", 0, 50, 0.25)
            rec.pop_frame()
        assert rec.profile == {
            ("campaign/advance", "add", 0): [150, 2, 0.75],
        }

    def test_profile_op_noop_unless_profiling(self):
        rec = obs.Recorder(enabled=True, profiling=False)
        rec.profile_op("add", 0, 100, 0.5)
        assert rec.profile == {}

    def test_snapshot_and_absorb_carry_profile(self):
        worker = obs.Recorder(enabled=True, profiling=True)
        worker.profile_op("mul", 1, 10, 0.1)
        parent = obs.Recorder(enabled=True, profiling=True)
        parent.profile_op("mul", 1, 5, 0.05)
        parent.absorb(worker.snapshot())
        assert parent.profile[("", "mul", 1)] == pytest.approx([15, 2, 0.15])

    def test_snapshot_positional_fields_stay_compatible(self):
        # profile was added after events: old positional constructions
        # (and pickles from older workers) must keep their meaning
        snap = obs.ObsSnapshot({"c": 1}, {}, {}, [])
        assert snap.profile == {}


class TestProfileScope:
    def test_delta_excludes_prior_activity(self):
        rec = obs.Recorder(enabled=True, profiling=True)
        with rec.span("campaign"):
            rec.profile_op("add", 0, 100, 1.0)
        scope = ProfileScope(rec)
        with rec.span("campaign"):
            rec.profile_op("add", 0, 40, 0.5)
        spans, profile = scope.finish()
        assert spans["campaign"][0] == 1  # one new span close
        assert profile[("campaign", "add", 0)] == pytest.approx([40, 1, 0.5])

    def test_to_event_round_trips_through_dict(self):
        rec = obs.Recorder(enabled=True, profiling=True)
        scope = ProfileScope(rec)
        with rec.span("campaign"):
            rec.profile_op("div", 2, 7, 0.01)
        event = scope.to_event("cg")
        blob = event.to_dict()
        assert blob["type"] == "campaign_profile"
        assert event_from_dict(blob) == event

    def test_live_profile_event_uses_absolute_state(self):
        rec = obs.Recorder(enabled=True, profiling=True)
        with rec.span("campaign"):
            rec.profile_op("add", 0, 3, 0.2)
        event = live_profile_event(rec)
        assert event.app == "live"
        assert event.ops[0]["ops"] == 3


class TestMerge:
    def test_merge_sums_spans_and_ops(self):
        merged = merge_profile_events([_event(app="a"), _event(app="b")])
        assert merged.app == "a, b"
        assert merged.wall_s == pytest.approx(2.0)
        assert merged.spans["campaign/trial"] == [8, pytest.approx(1.7)]
        row = [r for r in merged.ops if r["kind"] == "add"][0]
        assert row["ops"] == 2000 and row["calls"] == 20

    def test_merge_single_event_is_identity(self):
        event = _event()
        assert merge_profile_events([event]) is event

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_profile_events([])

    def test_profile_rows_sorted(self):
        rows = profile_rows({
            ("b", "add", 1): [1, 1, 0.1],
            ("a", "mul", 0): [2, 1, 0.2],
            ("a", "add", 0): [3, 1, 0.3],
        })
        assert [(r["phase"], r["kind"]) for r in rows] == [
            ("a", "add"), ("a", "mul"), ("b", "add"),
        ]


class TestSpanTree:
    def test_build_tree_nests_spans_and_ops(self):
        root = build_tree(_event())
        campaign = root.children["campaign"]
        assert campaign.seconds == pytest.approx(1.0)
        advance = (
            campaign.children["trial"].children["inject"].children["advance"]
        )
        assert set(advance.ops) == {"add", "mul", FRAME_TOTAL_KIND}

    def test_total_seconds_prefers_own_then_frame_then_children(self):
        root = build_tree(_event())
        campaign = root.children["campaign"]
        advance = (
            campaign.children["trial"].children["inject"].children["advance"]
        )
        assert campaign.total_seconds == pytest.approx(1.0)  # span time
        assert advance.total_seconds == pytest.approx(0.7)   # frame total
        assert advance.ops_seconds == pytest.approx(0.5)     # excl. frame row

    def test_flamegraph_children_fit_inside_parent(self):
        frames = flamegraph_frames(build_tree(_event()))
        by_depth: dict[int, float] = {}
        for depth, x0, width, _label in frames:
            assert 0 <= x0 <= 1 and 0 < width <= 1 + 1e-9
            by_depth[depth] = by_depth.get(depth, 0.0) + width
        assert by_depth[0] == pytest.approx(1.0)
        for depth, total in by_depth.items():
            assert total <= 1 + 1e-9, f"depth {depth} overflows"

    def test_flamegraph_scales_oversubscribed_children(self):
        # parallel workers: children report more seconds than the parent
        event = _event(
            spans={"campaign": [1, 1.0], "campaign/trial": [8, 4.0]},
            ops=[],
        )
        frames = flamegraph_frames(build_tree(event))
        (trial,) = [f for f in frames if f[3].startswith("trial")]
        assert trial[2] <= 1 + 1e-9

    def test_flamegraph_empty_event(self):
        assert flamegraph_frames(build_tree(_event(spans={}, ops=[]))) == []

    def test_render_profile_svg_is_valid_xml(self):
        svg = render_profile_svg(_event()).render()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert "campaign" in svg


class TestHeadlines:
    def test_coverage_sums_direct_children(self):
        assert coverage(_event()) == pytest.approx(0.95)

    def test_coverage_zero_without_campaign_span(self):
        assert coverage(_event(spans={"x": [1, 1.0]}, ops=[])) == 0.0

    def test_traced_op_share_excludes_frame_totals(self):
        # add 0.3 + mul 0.2 over 0.8s of inject; the 0.7s "step" frame
        # row contains them and must not be double-counted
        assert traced_op_share(_event()) == pytest.approx(0.625)

    def test_report_mentions_headlines(self):
        report = render_profile_report(_event())
        assert "Hot-path attribution" in report
        assert "wall-time coverage: 95.0%" in report
        assert "traced-op share:    62.5%" in report
        assert "Mops/s" in report


class TestProfiledCampaign:
    """End-to-end: a real campaign under ``profiling=True``."""

    def _run(self, jobs=1, trials=40):
        mem = MemorySink()
        rec = obs.Recorder([mem], profiling=True)
        app = get_app("cg")
        deployment = Deployment(nprocs=2, trials=trials, seed=5)
        with obs.recording(rec):
            result = run_campaign(app, deployment, jobs=jobs)
        (event,) = profiles_of(mem.events)
        return result, event

    def test_attribution_covers_campaign_wall_time(self):
        # one warm-up campaign first: the engine's lazy imports happen
        # inside the first campaign span and would depress its coverage
        self._run(trials=2)
        _, event = self._run()
        assert event.wall_s > 0
        assert coverage(event) >= 0.95

    def test_traced_ops_attributed_to_scheduler_frame(self):
        _, event = self._run()
        phases = {r["phase"] for r in event.ops}
        assert "campaign/trial/inject/advance" in phases
        kinds = {r["kind"] for r in event.ops}
        assert kinds & set(OP_KINDS)
        assert 0 < traced_op_share(event) <= 1.0

    def test_op_counts_deterministic_and_jobs_invariant(self):
        result1, event1 = self._run(jobs=1, trials=12)
        result2, event2 = self._run(jobs=2, trials=12)
        assert result1.joint == result2.joint
        assert list(result1.joint) == list(result2.joint)

        def counts(event):
            # seconds are wall-clock; ops/calls are deterministic and
            # must not depend on how trials were chunked over workers
            return {
                (r["phase"], r["kind"], r["rank"]): (r["ops"], r["calls"])
                for r in event.ops
            }

        assert counts(event1) == counts(event2)

    def test_profiling_does_not_change_results(self):
        app = get_app("cg")
        deployment = Deployment(nprocs=2, trials=12, seed=5)
        with obs.recording(obs.Recorder(enabled=False)):
            plain = run_campaign(app, deployment, jobs=1)
        profiled, _ = self._run(trials=12)
        assert plain.joint == profiled.joint
        assert list(plain.joint) == list(profiled.joint)
        assert plain.total_instructions == profiled.total_instructions


class TestObsProfileCli:
    def _trace_with_profile(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        sink = JsonlSink(trace)
        sink.write(_event())
        sink.close()
        return trace

    def test_reports_profile(self, tmp_path, capsys):
        trace = self._trace_with_profile(tmp_path)
        assert main(["obs-profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Hot-path attribution" in out and "wall-time coverage" in out

    def test_writes_svg(self, tmp_path, capsys):
        trace = self._trace_with_profile(tmp_path)
        svg = tmp_path / "flame.svg"
        assert main(["obs-profile", str(trace), "--svg", str(svg)]) == 0
        assert "flamegraph written to" in capsys.readouterr().out
        assert ET.fromstring(svg.read_text()).tag.endswith("svg")

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["obs-profile", str(tmp_path / "gone.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_trace_without_profiles_exits_1(self, tmp_path, capsys):
        trace = tmp_path / "plain.jsonl"
        sink = JsonlSink(trace)
        sink.write(obs.SpanEnd(path="campaign", duration_s=1.0))
        sink.close()
        assert main(["obs-profile", str(trace)]) == 1
        assert "rerun the experiment with --profile" in capsys.readouterr().err
