"""Differential + chaos tests for the distributed campaign backend.

Three layers:

* Wire-level unit tests for the length-prefixed JSON framing
  (``socketpair`` — no subprocesses).
* Backend-selection tests: ``canonical_backend`` spec parsing, the
  arg > ``Deployment.backend`` > ``$REPRO_BACKEND`` precedence chain,
  and the aggregator's duplicate-chunk guard.
* Differential/chaos tests that spawn *real* worker subprocesses
  (``distributed_child.py``) and assert the distributed backend's
  results — joints, records, provenance bytes, filtered event streams —
  are identical to ``InlineBackend``'s, under healthy pools and under
  worker death, stalls, garbage frames, and interrupt/resume.

Workers must be subprocesses, never threads: ``execute_chunk`` swaps
the *process-global* recorder while a chunk runs, so an in-process
worker would race the driver's recorder.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.engine import (
    ChunkAggregator,
    ChunkPayload,
    DistributedBackend,
    InlineBackend,
    ProcessPoolBackend,
    canonical_backend,
    planning_jobs,
    select_backend,
)
from repro.engine.chunks import EngineContext
from repro.engine.distributed import (
    MAX_FRAME_BYTES,
    _FrameBuffer,
    _resolve_address,
    recv_frame,
    send_frame,
    worker_main,
)
from repro.errors import (
    ConfigurationError,
    DistributedProtocolError,
    WorkerCrashError,
)
from repro.fi.campaign import (
    Deployment,
    Outcome,
    default_backend,
    run_campaign,
)
from repro.obs.provenance import provenance_path
from repro.obs.report import worker_summary

CHILD = str(Path(__file__).with_name("distributed_child.py"))
REPO_ROOT = Path(__file__).resolve().parents[2]
DIST = "distributed:127.0.0.1:0"


class DotApp:
    """Tiny distributed dot product — cheap, injectable, picklable.

    Mirrors test_parallel's ParityApp; defined here (module-level) so
    worker subprocesses can unpickle it — this module is importable
    from the child's script directory.
    """

    name = "dist-dot"

    def __init__(self, n: int = 64, tol: float = 1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self) -> str:
        return f"dist-dot(n={self.n},tol={self.tol})"


# ----------------------------------------------------------------- pools


class WorkerPool:
    """Spawns distributed_child.py subprocesses sharing one port file."""

    def __init__(self, tmp_path: Path):
        self.port_file = tmp_path / "controller.port"
        self.tmp = tmp_path
        self.procs: list[subprocess.Popen] = []

    def spawn(self, *args: str) -> subprocess.Popen:
        log = open(self.tmp / f"child-{len(self.procs)}.log", "w")
        # Children must import both the package (src/) and this module
        # itself — pytest pickles DotApp as tests.unit.test_distributed,
        # so the repo root has to be importable in the worker too.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([
            str(REPO_ROOT / "src"), str(REPO_ROOT),
            *filter(None, [env.get("PYTHONPATH")]),
        ])
        proc = subprocess.Popen(
            [sys.executable, CHILD, *args],
            stdout=subprocess.DEVNULL,
            stderr=log,
            env=env,
        )
        proc._log = log  # type: ignore[attr-defined]
        self.procs.append(proc)
        return proc

    def workers(self, n: int, timeout: float = 60.0) -> None:
        for _ in range(n):
            self.spawn(
                "worker", "--port-file", str(self.port_file),
                "--timeout", str(timeout),
            )

    def logs(self) -> str:
        chunks = []
        for i in range(len(self.procs)):
            path = self.tmp / f"child-{i}.log"
            if path.exists():
                chunks.append(f"--- child {i} ---\n{path.read_text()}")
        return "\n".join(chunks)

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.kill()
        for proc in self.procs:
            proc.wait(timeout=10)
            proc._log.close()  # type: ignore[attr-defined]


@pytest.fixture
def pool(tmp_path, monkeypatch):
    p = WorkerPool(tmp_path)
    monkeypatch.setenv("REPRO_DIST_PORT_FILE", str(p.port_file))
    yield p
    p.close()


def traced(trace_path: Path, fn):
    """Run ``fn`` with a globally installed trace recorder, then restore."""
    previous = obs.get_recorder()
    recorder = obs.configure(trace_path=str(trace_path))
    try:
        return fn()
    finally:
        obs.set_recorder(previous)
        recorder.close()


# Worker-lifecycle / storage events are operational — documented as
# outside the byte-identity contract (docs/distributed.md) — and
# wall-clock fields are inherently machine-dependent.  Everything else
# must match the inline backend exactly, in order.
_OPERATIONAL_TYPES = {
    "worker_joined", "worker_lost", "chunk_requeued",
    "checkpoint_written", "campaign_resumed",
    "cache_hit", "cache_miss", "cache_write", "cache_corrupt",
}
_VOLATILE_KEYS = {"ts", "duration_s", "profile_time", "injection_time"}


def stripped_events(trace_path: Path) -> list[dict]:
    events = []
    for line in trace_path.read_text().splitlines():
        blob = json.loads(line)
        if blob.get("type") in _OPERATIONAL_TYPES:
            continue
        events.append(
            {k: v for k, v in blob.items() if k not in _VOLATILE_KEYS}
        )
    return events


def assert_campaigns_identical(dist, inline) -> None:
    assert dist.joint == inline.joint
    assert list(dist.joint) == list(inline.joint)          # fold order
    assert dist.records == inline.records
    assert dist.parallel_unique_fraction == inline.parallel_unique_fraction
    assert dist.total_instructions == inline.total_instructions


# ---------------------------------------------------------------- framing


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(a, {"op": "hello", "pid": 7, "digests": []})
            assert recv_frame(b) == {"op": "hello", "pid": 7, "digests": []}

    def test_multiple_frames_in_order(self):
        a, b = socket.socketpair()
        with a, b:
            for i in range(5):
                send_frame(a, {"op": "chunk", "start": i})
            got = [recv_frame(b)["start"] for _ in range(5)]
            assert got == [0, 1, 2, 3, 4]

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        with b:
            assert recv_frame(b) is None

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        a.sendall(struct.pack(">I", 64) + b"only-a-few-bytes")
        a.close()
        with b:
            with pytest.raises(DistributedProtocolError, match="mid-frame"):
                recv_frame(b)

    def test_oversize_length_prefix_raises(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(DistributedProtocolError, match="frame"):
                recv_frame(b)

    def test_non_object_body_raises(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(DistributedProtocolError):
                recv_frame(b)

    def test_undecodable_body_raises(self):
        a, b = socket.socketpair()
        with a, b:
            body = b"\xff\xfe not json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(DistributedProtocolError):
                recv_frame(b)

    def test_frame_buffer_byte_at_a_time(self):
        body = json.dumps({"op": "ready", "warm": True}).encode()
        stream = struct.pack(">I", len(body)) + body
        buf = _FrameBuffer()
        frames = []
        for i in range(len(stream)):
            frames.extend(buf.feed(stream[i : i + 1]))
        assert frames == [{"op": "ready", "warm": True}]

    def test_frame_buffer_two_frames_one_feed(self):
        body = json.dumps({"op": "x"}).encode()
        frame = struct.pack(">I", len(body)) + body
        assert _FrameBuffer().feed(frame * 2) == [{"op": "x"}, {"op": "x"}]

    def test_frame_buffer_garbage_length(self):
        with pytest.raises(DistributedProtocolError):
            _FrameBuffer().feed(b"\xff\xff\xff\xff garbage")


# ------------------------------------------------------- backend selection


class TestBackendSpec:
    def test_canonical_forms(self):
        assert canonical_backend("inline") == "inline"
        assert canonical_backend("process") == "process"
        assert canonical_backend("pool") == "process"
        assert canonical_backend(" Inline ") == "inline"
        assert canonical_backend(None) is None

    def test_distributed_spec(self):
        assert (
            canonical_backend("distributed:127.0.0.1:9000")
            == "distributed:127.0.0.1:9000"
        )

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "distributed", "distributed:", "distributed:host:nope",
         "distributed:host:-1", ""],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            canonical_backend(spec)

    def test_planning_jobs_floors_distributed(self):
        assert planning_jobs("distributed:127.0.0.1:0", 1) == 4
        assert planning_jobs("distributed:127.0.0.1:0", 8) == 8
        assert planning_jobs("inline", 1) == 1
        assert planning_jobs(None, 3) == 3

    def test_select_backend_types(self):
        assert isinstance(
            select_backend(1, 4, False, "inline"), InlineBackend
        )
        assert isinstance(
            select_backend(2, 8, False, "process"), ProcessPoolBackend
        )
        backend = select_backend(1, 4, False, "distributed:127.0.0.1:7001")
        assert isinstance(backend, DistributedBackend)
        assert (backend.host, backend.port) == ("127.0.0.1", 7001)
        # explicit spec overrides the pool heuristic
        assert isinstance(select_backend(4, 8, False, "inline"), InlineBackend)

    def test_deployment_field_is_canonicalized(self):
        dep = Deployment(nprocs=2, trials=4, backend="pool")
        assert dep.backend == "process"
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=2, trials=4, backend="warp-drive")

    def test_env_default_and_malformed_warning(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() is None
        monkeypatch.setenv("REPRO_BACKEND", "pool")
        assert default_backend() == "process"
        monkeypatch.setenv("REPRO_BACKEND", "warp-drive")
        assert default_backend() is None
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_precedence_arg_over_field_over_env(self, monkeypatch):
        from repro.fi.campaign import _resolve_backend

        monkeypatch.setenv("REPRO_BACKEND", "process")
        plain = Deployment(nprocs=1, trials=2)
        field = Deployment(nprocs=1, trials=2, backend="inline")
        assert _resolve_backend(None, plain) == "process"       # env
        assert _resolve_backend(None, field) == "inline"        # field
        assert _resolve_backend("pool", field) == "process"     # arg
        monkeypatch.delenv("REPRO_BACKEND")
        assert _resolve_backend(None, plain) is None

    def test_cli_flag_sets_env_for_experiments(self, monkeypatch):
        import repro.experiments.cli as cli

        seen = {}

        class StubExperiment:
            @staticmethod
            def run(trials, seed, quiet):
                seen["backend"] = os.environ.get("REPRO_BACKEND")
                return 0

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setattr(
            cli.importlib, "import_module", lambda name: StubExperiment
        )
        # cli.main writes $REPRO_BACKEND (the --jobs-style env relay);
        # delenv on an absent var registers no undo, so pop it ourselves
        # or it leaks into every later test's backend selection
        try:
            assert cli.main(["table1", "--backend", "pool", "--quiet"]) == 0
        finally:
            os.environ.pop("REPRO_BACKEND", None)
        assert seen["backend"] == "process"

    def test_cli_rejects_bad_backend(self):
        import repro.experiments.cli as cli

        with pytest.raises(SystemExit):
            cli.main(["table1", "--backend", "warp-drive"])


# -------------------------------------------------- aggregator duplicates


def _payload(start: int, stop: int) -> ChunkPayload:
    joint = {(Outcome.SUCCESS, 0, False): stop - start}
    return ChunkPayload(start=start, stop=stop, joint=joint, records=[])


class TestAggregatorDuplicateGuard:
    def test_duplicate_of_folded_chunk_is_ignored(self):
        agg = ChunkAggregator([(0, 2), (2, 4)])
        agg.add(_payload(0, 2))
        agg.add(_payload(0, 2))                 # replayed result
        agg.add(_payload(2, 4))
        joint, _ = agg.finish()
        assert joint[(Outcome.SUCCESS, 0, False)] == 4
        assert agg.duplicate_chunks == 1

    def test_duplicate_of_buffered_chunk_is_ignored(self):
        agg = ChunkAggregator([(0, 2), (2, 4)])
        agg.add(_payload(2, 4))                 # buffered out of order
        agg.add(_payload(2, 4))                 # duplicate while pending
        assert agg.duplicate_chunks == 1
        agg.add(_payload(0, 2))
        joint, _ = agg.finish()
        assert joint[(Outcome.SUCCESS, 0, False)] == 4

    def test_unplanned_chunk_still_rejected(self):
        agg = ChunkAggregator([(0, 2)])
        with pytest.raises(ValueError):
            agg.add(_payload(5, 7))

    def test_duplicates_are_metered(self):
        recorder = obs.Recorder([obs.MemorySink()])
        agg = ChunkAggregator([(0, 2)], recorder)
        agg.add(_payload(0, 2))
        agg.add(_payload(0, 2))
        assert recorder.counters["engine.duplicate_chunks"] == 1


# ------------------------------------------------------------- worker CLI


class TestWorkerCLI:
    def test_requires_an_address_or_port_file(self):
        with pytest.raises(SystemExit):
            worker_main([])

    def test_times_out_without_a_controller(self, tmp_path):
        started = time.monotonic()
        rc = worker_main(
            ["--port-file", str(tmp_path / "never-written"), "--timeout", "0.3"]
        )
        assert rc == 0
        assert time.monotonic() - started < 10.0

    def test_resolve_address_forms(self, tmp_path):
        ns = argparse.Namespace(address="10.0.0.1:7002", port_file=None)
        assert _resolve_address(ns) == ("10.0.0.1", 7002)
        port_file = tmp_path / "port"
        port_file.write_text("127.0.0.1:7003\n")
        ns = argparse.Namespace(address=None, port_file=str(port_file))
        assert _resolve_address(ns) == ("127.0.0.1", 7003)
        ns = argparse.Namespace(address=None, port_file=str(tmp_path / "no"))
        assert _resolve_address(ns) is None
        ns = argparse.Namespace(address="not-an-address", port_file=None)
        assert _resolve_address(ns) is None

    def test_controller_publishes_port_file(self, tmp_path, monkeypatch):
        port_file = tmp_path / "port"
        monkeypatch.setenv("REPRO_DIST_PORT_FILE", str(port_file))
        backend = DistributedBackend()
        ctx = EngineContext(
            app=DotApp(), deployment=None, profile=None, reference={},
            keep_records=False, obs_enabled=False,
        )
        assert list(backend.run(ctx, [])) == []
        host, _, port = port_file.read_text().strip().rpartition(":")
        assert host == "127.0.0.1"
        assert int(port) == backend.address[1]


# ------------------------------------------------------------ obs report


class TestWorkerReport:
    def test_worker_summary_table(self):
        events = [
            obs.WorkerJoined(worker=1, pid=100, addr="127.0.0.1:5000",
                             warm=False, init_s=0.25),
            obs.WorkerJoined(worker=2, pid=101, addr="127.0.0.1:5001",
                             warm=True, init_s=0.0),
            obs.ChunkRequeued(chunk_start=4, chunk_stop=8, worker=1,
                              reason="disconnect"),
            obs.WorkerLost(worker=1, reason="disconnect", chunks_done=3),
            obs.WorkerLost(worker=2, reason="released", chunks_done=9),
        ]
        table = worker_summary(events)
        assert "Workers (2 joined)" in table
        assert "cold (250 ms)" in table
        assert "warm" in table
        assert "DISCONNECT" in table
        assert "released" in table

    def test_no_workers_means_no_table(self):
        assert worker_summary([obs.TrialFinished(
            trial=0, outcome="success", n_contaminated=0, activated=False,
            duration_s=0.0)]) is None


# ------------------------------------------------------------ differential


class TestDistributedParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_joint_and_records_match_inline(self, pool, workers):
        deployment = Deployment(nprocs=2, trials=30, seed=5)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pool.workers(workers)
        dist = run_campaign(
            DotApp(), deployment, keep_records=True, backend=DIST
        )
        assert_campaigns_identical(dist, inline)

    def test_three_backends_agree(self, pool):
        """Inline, ProcessPool and Distributed: one deployment, one answer."""
        deployment = Deployment(nprocs=2, trials=30, seed=5)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pooled = run_campaign(
            DotApp(), deployment, keep_records=True, backend="process", jobs=2
        )
        pool.workers(2)
        dist = run_campaign(
            DotApp(), deployment, keep_records=True, backend=DIST
        )
        assert_campaigns_identical(pooled, inline)
        assert_campaigns_identical(dist, inline)

    def test_lane_vectorized_workers_match_scalar_inline(self, pool):
        deployment = Deployment(nprocs=2, trials=24, seed=9)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pool.workers(2)
        dist = run_campaign(
            DotApp(), deployment, keep_records=True, backend=DIST, lanes=8
        )
        assert_campaigns_identical(dist, inline)

    @pytest.mark.parametrize(
        "app_name,workers,lanes",
        [("cg", 1, 1), ("cg", 2, 1), ("cg", 4, 8), ("mg", 2, 1), ("mg", 2, 8)],
    )
    def test_trace_and_provenance_bytes_match_inline(
        self, pool, tmp_path, app_name, workers, lanes
    ):
        from repro.apps import get_app

        app = get_app(app_name)
        deployment = Deployment(nprocs=2, trials=12, seed=3)
        inline_trace = tmp_path / "inline.jsonl"
        dist_trace = tmp_path / "dist.jsonl"
        traced(inline_trace,
               lambda: run_campaign(app, deployment, backend="inline"))
        pool.workers(workers)
        traced(dist_trace,
               lambda: run_campaign(app, deployment, backend=DIST,
                                    lanes=lanes))
        assert (
            provenance_path(dist_trace).read_bytes()
            == provenance_path(inline_trace).read_bytes()
        ), pool.logs()
        assert stripped_events(dist_trace) == stripped_events(inline_trace)

    def test_warm_pool_reuse_across_campaigns(self, pool):
        deployment = Deployment(nprocs=1, trials=12, seed=7)
        pool.workers(1)
        first_mem, second_mem = obs.MemorySink(), obs.MemorySink()
        with obs.recording(obs.Recorder([first_mem])):
            first = run_campaign(DotApp(), deployment, backend=DIST)
        with obs.recording(obs.Recorder([second_mem])):
            second = run_campaign(DotApp(), deployment, backend=DIST)
        assert second.joint == first.joint
        first_joins = first_mem.of(obs.WorkerJoined)
        second_joins = second_mem.of(obs.WorkerJoined)
        assert first_joins and not any(e.warm for e in first_joins)
        assert second_joins and all(e.warm for e in second_joins), pool.logs()


# ------------------------------------------------------------------ chaos


class TestDistributedChaos:
    def test_worker_death_mid_campaign_completes_identically(self, pool):
        deployment = Deployment(nprocs=1, trials=40, seed=2)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pool.spawn("quit-after", "2", str(pool.port_file))
        pool.workers(1)
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            dist = run_campaign(
                DotApp(), deployment, keep_records=True, backend=DIST
            )
        assert_campaigns_identical(dist, inline)
        lost = [e for e in mem.of(obs.WorkerLost) if e.reason == "disconnect"]
        assert lost, pool.logs()

    def test_sigkilled_worker_chunk_requeued_via_disconnect(self, pool):
        deployment = Deployment(nprocs=1, trials=30, seed=4)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        # The stall child connects first and sits on a chunk; a healthy
        # worker joins ~2.5 s later; a timer SIGKILLs the stalled child,
        # whose EOF must requeue its chunk with no deadline involved.
        stalled = pool.spawn("stall", str(pool.port_file))
        pool.spawn(
            "slow-worker", "2.5",
            "--port-file", str(pool.port_file), "--timeout", "60",
        )
        killer = threading.Timer(4.0, stalled.kill)
        killer.start()
        mem = obs.MemorySink()
        try:
            with obs.recording(obs.Recorder([mem])):
                dist = run_campaign(
                    DotApp(), deployment, keep_records=True, backend=DIST
                )
        finally:
            killer.cancel()
        assert_campaigns_identical(dist, inline)
        assert mem.of(obs.ChunkRequeued), pool.logs()
        lost = [e for e in mem.of(obs.WorkerLost) if e.reason == "disconnect"]
        assert lost, pool.logs()

    def test_stalled_worker_times_out_and_chunk_requeues(
        self, pool, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DIST_CHUNK_TIMEOUT", "2.0")
        deployment = Deployment(nprocs=1, trials=30, seed=8)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pool.spawn("stall", str(pool.port_file))
        pool.spawn(
            "slow-worker", "2.5",
            "--port-file", str(pool.port_file), "--timeout", "60",
        )
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            dist = run_campaign(
                DotApp(), deployment, keep_records=True, backend=DIST
            )
        assert_campaigns_identical(dist, inline)
        assert mem.of(obs.ChunkRequeued), pool.logs()
        lost = [e for e in mem.of(obs.WorkerLost) if e.reason == "timeout"]
        assert lost, pool.logs()

    def test_garbage_frame_drops_worker_and_completes(self, pool):
        deployment = Deployment(nprocs=1, trials=20, seed=6)
        inline = run_campaign(
            DotApp(), deployment, keep_records=True, backend="inline"
        )
        pool.spawn("garbage", str(pool.port_file))
        pool.spawn(
            "slow-worker", "1.5",
            "--port-file", str(pool.port_file), "--timeout", "60",
        )
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            dist = run_campaign(
                DotApp(), deployment, keep_records=True, backend=DIST
            )
        assert_campaigns_identical(dist, inline)
        lost = [e for e in mem.of(obs.WorkerLost) if e.reason == "protocol"]
        assert lost, pool.logs()

    def test_no_workers_is_a_typed_error_not_a_hang(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv("REPRO_DIST_WORKER_TIMEOUT", "0.5")
        monkeypatch.setenv(
            "REPRO_DIST_PORT_FILE", str(tmp_path / "port")
        )
        started = time.monotonic()
        with pytest.raises(WorkerCrashError):
            run_campaign(
                DotApp(), Deployment(nprocs=1, trials=6, seed=1),
                backend=DIST,
            )
        assert time.monotonic() - started < 30.0

    def test_interrupt_then_resume_is_byte_identical(
        self, pool, tmp_path, monkeypatch
    ):
        deployment = Deployment(nprocs=2, trials=20, seed=6)
        clean_trace = tmp_path / "clean.jsonl"
        resumed_trace = tmp_path / "resumed.jsonl"
        traced(clean_trace,
               lambda: run_campaign(DotApp(), deployment, backend="inline"))

        # Interrupted attempt: the only worker dies after two chunks and
        # the controller gives up fast.  Two chunks are durable.
        monkeypatch.setenv("REPRO_DIST_WORKER_TIMEOUT", "0.75")
        pool.spawn("quit-after", "2", str(pool.port_file))
        with pytest.raises(WorkerCrashError):
            run_campaign(
                DotApp(), deployment, backend=DIST, checkpoint_every=5
            )

        # Resume with a healthy pool: recovered chunks replay their
        # events, fresh chunks fill in the rest, bytes match the clean
        # uninterrupted inline run.
        monkeypatch.setenv("REPRO_DIST_WORKER_TIMEOUT", "120")
        pool.workers(2)
        traced(
            resumed_trace,
            lambda: run_campaign(
                DotApp(), deployment, backend=DIST,
                checkpoint_every=5, resume=True,
            ),
        )
        assert (
            provenance_path(resumed_trace).read_bytes()
            == provenance_path(clean_trace).read_bytes()
        ), pool.logs()
        assert stripped_events(resumed_trace) == stripped_events(clean_trace)
