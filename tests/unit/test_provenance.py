"""Fault-provenance records: assembly, persistence, parallel parity.

The app is a module-level class so ``spawn`` workers can unpickle it
(see test_parallel.py for the idiom).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.fi.campaign import Deployment, run_campaign
from repro.numerics.bits import flip_bit_scalar
from repro.obs.events import TrialProvenance
from repro.obs.provenance import (
    FaultProvenance,
    FlipObservation,
    load_provenance,
    provenance_path,
)
from repro.obs.sinks import MemorySink


class ProvApp:
    """Distributed dot product with a final allreduce (spreads taint)."""

    name = "prov"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"prov(n={self.n},tol={self.tol})"


def _campaign_provenance(trials=12, nprocs=2, seed=11, jobs=1):
    mem = MemorySink()
    with obs.recording(obs.Recorder([mem])):
        run_campaign(ProvApp(), Deployment(nprocs=nprocs, trials=trials, seed=seed),
                     jobs=jobs)
    return [FaultProvenance.from_event(e) for e in mem.of(TrialProvenance)]


class TestProvenanceAssembly:
    def test_one_record_per_trial_in_order(self):
        records = _campaign_provenance(trials=8)
        assert [r.trial for r in records] == list(range(8))

    def test_planned_sites_match_schema(self):
        for r in _campaign_provenance(trials=8):
            assert len(r.planned) == 1  # single-error deployment
            site = r.planned[0]
            assert set(site) == {"rank", "region", "index", "operand", "bit"}
            assert 0 <= site["bit"] < 64

    def test_fired_flips_record_actual_corruption(self):
        fired = [
            f for r in _campaign_provenance(trials=20) for f in r.fired
        ]
        assert fired  # at least one activated trial at 20 trials
        for f in fired:
            assert f.op in ("add", "mul")
            assert f.operand in ("A", "B", "OUT")
            expected = f.pre
            for bit in f.bits:
                expected = flip_bit_scalar(expected, bit)
            if np.isnan(expected):
                assert np.isnan(f.post)
            else:
                assert f.post == expected

    def test_timeline_starts_at_injected_rank(self):
        for r in _campaign_provenance(trials=20):
            if not r.fired or len(r.spread_ranks) < 2:
                continue
            assert r.spread_ranks[0] == r.fired[0].rank
            steps = [step for step, _ in r.timeline]
            assert steps == sorted(steps)  # contamination marches forward

    def test_outcome_matches_trial_record(self):
        records = _campaign_provenance(trials=8)
        assert all(r.outcome in ("success", "sdc", "failure") for r in records)
        assert all(r.n_contaminated <= 2 for r in records)

    def test_round_trip_through_event(self):
        for r in _campaign_provenance(trials=6):
            assert FaultProvenance.from_event(r.to_event()) == r


class TestProvenanceParallelParity:
    def test_memory_events_identical_across_jobs(self):
        serial = _campaign_provenance(trials=10, jobs=1)
        parallel = _campaign_provenance(trials=10, jobs=2)
        assert serial == parallel


class TestProvenanceFile:
    def test_path_derivation(self, tmp_path):
        assert provenance_path("run.jsonl").name == "run.provenance.jsonl"
        assert provenance_path(tmp_path / "a.b.jsonl").name == "a.b.provenance.jsonl"

    def _run_traced(self, tmp_path, jobs, tag):
        trace = tmp_path / f"{tag}.jsonl"
        previous = obs.get_recorder()
        rec = obs.configure(trace_path=trace)
        try:
            run_campaign(
                ProvApp(), Deployment(nprocs=2, trials=10, seed=5), jobs=jobs
            )
        finally:
            rec.close()
            obs.set_recorder(previous)
        return trace

    def test_provenance_file_bit_identical_across_jobs(self, tmp_path):
        serial = self._run_traced(tmp_path, 1, "serial")
        parallel = self._run_traced(tmp_path, 2, "parallel")
        ser_bytes = provenance_path(serial).read_bytes()
        par_bytes = provenance_path(parallel).read_bytes()
        assert ser_bytes and ser_bytes == par_bytes

    def test_provenance_routed_away_from_main_trace(self, tmp_path):
        trace = self._run_traced(tmp_path, 1, "routed")
        assert '"trial_provenance"' not in trace.read_text()
        records = load_provenance(provenance_path(trace))
        assert [r.trial for r in records] == list(range(10))
        # deterministic file: no wall-clock stamps
        assert '"ts"' not in provenance_path(trace).read_text()

    def test_load_provenance_skips_partial_lines(self, tmp_path):
        trace = self._run_traced(tmp_path, 1, "partial")
        prov = provenance_path(trace)
        with prov.open("a") as fh:
            fh.write('{"type": "trial_prov')
        messages = []
        records = load_provenance(prov, on_skip=messages.append)
        assert len(records) == 10
        assert len(messages) == 1


class TestFlipObservation:
    def test_payload_round_trip(self):
        f = FlipObservation(rank=1, region="common", op="mul", index=42,
                            operand="OUT", bits=(3, 17), pre=1.5, post=-2.25)
        assert FlipObservation.from_payload(f.to_payload()) == f
