"""Additional scheduler coverage: steps, traffic recording, errstate."""

import numpy as np
import pytest

from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.taint.ops import FPOps


def make_scheduler(prog, size, **kwargs):
    def factory(rank: int, comm: Communicator):
        return prog(rank, size, comm, FPOps(None, rank))

    return Scheduler(size, factory, **kwargs)


class TestSteps:
    def test_steps_count_generator_resumptions(self):
        def prog(rank, size, comm, fp):
            yield comm.barrier()
            yield comm.barrier()
            return None

        sched = make_scheduler(prog, 3)
        sched.run()
        # each rank: initial run + resume after each barrier = 3 resumes
        assert sched.steps == 9

    def test_steps_grow_with_size(self):
        def prog(rank, size, comm, fp):
            for i in range(4):
                yield comm.allreduce(1, op="sum")
            return None

        small = make_scheduler(prog, 2)
        small.run()
        large = make_scheduler(prog, 8)
        large.run()
        assert large.steps > small.steps


class TestTrafficRecording:
    def test_disabled_by_default(self):
        def prog(rank, size, comm, fp):
            yield comm.send((rank + 1) % size, rank, tag=0)
            yield comm.recv(source=(rank - 1) % size, tag=0)
            return None

        sched = make_scheduler(prog, 2)
        sched.run()
        assert sched.traffic is None and sched.collective_counts is None

    def test_records_edges_and_collectives(self):
        def prog(rank, size, comm, fp):
            yield comm.send((rank + 1) % size, rank, tag=0)
            yield comm.recv(source=(rank - 1) % size, tag=0)
            yield comm.allreduce(1.0, op="max")
            return None

        sched = make_scheduler(prog, 3, record_traffic=True)
        sched.run()
        assert sched.traffic == {(0, 1): 1, (1, 2): 1, (2, 0): 1}
        assert sched.collective_counts == {"allreduce:max": 1}

    def test_barrier_label_has_no_op(self):
        def prog(rank, size, comm, fp):
            yield comm.barrier()
            return None

        sched = make_scheduler(prog, 2, record_traffic=True)
        sched.run()
        assert sched.collective_counts == {"barrier": 1}


class TestErrstateSuppression:
    def test_faulty_overflow_raises_no_warning(self, recwarn):
        """Scheduler.run suppresses FP warnings for the whole execution."""
        from repro.taint.tarray import TArray

        def prog(rank, size, comm, fp):
            bad = TArray(np.array([1.0]), np.array([1e308]))
            out = fp.mul(bad, bad)  # golden fine, faulty overflows to inf
            yield comm.barrier()
            return {"v": out.to_numpy()[0]}

        sched = make_scheduler(prog, 1)
        (result,) = sched.run()
        assert result["v"] == np.inf
        assert not any("overflow" in str(w.message) for w in recwarn.list)
