"""Injection correctness under general numpy broadcasting."""

import numpy as np
import pytest

from repro.fi.tracer import Tracer, TracerMode
from repro.numerics.bits import flip_bit_scalar
from repro.taint.ops import FPOps
from repro.taint.tracer_api import Operand
from tests.conftest import make_inject_fp


class TestOuterProductBroadcast:
    def test_counts_are_output_sized(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        a = fp.asarray(np.ones((4, 1)))
        b = fp.asarray(np.ones((1, 5)))
        out = fp.mul(a, b)
        assert out.shape == (4, 5)
        assert tracer.profile.candidates(0) == 20

    def test_lane_maps_to_broadcast_element_a(self, rng):
        a = rng.standard_normal((3, 1))
        b = rng.standard_normal((1, 4))
        lane = 6  # row 1, col 2 of the 3x4 output
        fp, tracer = make_inject_fp(index=lane, operand=Operand.A, bit=63)
        out = fp.mul(fp.asarray(a), fp.asarray(b))
        expected = a * b
        expected[1, 2] = -a[1, 0] * b[0, 2]
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-15)
        assert tracer.all_flips_activated

    def test_lane_maps_to_broadcast_element_b(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal(3)  # broadcast over rows
        lane = 4  # row 1, col 1
        fp, _ = make_inject_fp(index=lane, operand=Operand.B, bit=52)
        out = fp.add(fp.asarray(a), fp.asarray(b))
        expected = a + b
        expected[1, 1] = a[1, 1] + flip_bit_scalar(b[1], 52)
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-15)

    def test_three_dim_twiddle_style_broadcast(self, rng):
        """The FT twiddle pattern: (n2,1,1) constants times (n2,ny,nx)."""
        data = rng.standard_normal((4, 2, 2))
        w = rng.standard_normal((4, 1, 1))
        lane = 9  # element (2, 0, 1)
        fp, _ = make_inject_fp(index=lane, operand=Operand.B, bit=63)
        out = fp.mul(fp.asarray(data), fp.asarray(w))
        expected = data * w
        expected[2, 0, 1] = data[2, 0, 1] * -w[2, 0, 0]
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-15)

    def test_only_target_lane_corrupted(self, rng):
        a = rng.standard_normal((5, 1))
        b = rng.standard_normal((1, 5))
        fp, _ = make_inject_fp(index=12, operand=Operand.OUT, bit=40)
        out = fp.mul(fp.asarray(a), fp.asarray(b))
        diff = np.abs(out.to_numpy() - out.golden_numpy()) > 0
        assert diff.sum() == 1
        assert diff.reshape(-1)[12]
