"""Smaller units: error hierarchy, request objects, public API surface."""

import dataclasses

import pytest

import repro
from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    FaultActivatedError,
    InjectionPlanError,
    ReproError,
    SimulatedCrashError,
    SimulatedHangError,
)
from repro.mpisim.requests import (
    ANY,
    CollectiveKind,
    RecvRequest,
    SendRecvRequest,
    _Wildcard,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, DeadlockError, CommunicatorError,
         InjectionPlanError, FaultActivatedError, SimulatedCrashError,
         SimulatedHangError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_crash_and_hang_are_fault_activated(self):
        assert issubclass(SimulatedCrashError, FaultActivatedError)
        assert issubclass(SimulatedHangError, FaultActivatedError)
        # ... and the harness can distinguish them from config errors
        assert not issubclass(FaultActivatedError, ConfigurationError)


class TestRequests:
    def test_wildcard_is_singleton(self):
        assert _Wildcard() is ANY
        assert repr(ANY) == "ANY"

    def test_recv_matching(self):
        req = RecvRequest(rank=0, source=2, tag=5)
        assert req.matches(2, 5)
        assert not req.matches(1, 5)
        assert not req.matches(2, 6)
        assert RecvRequest(rank=0, source=ANY, tag=ANY).matches(9, 9)

    def test_sendrecv_recv_part(self):
        req = SendRecvRequest(
            rank=1, dest=2, send_tag=3, payload="x", source=0, recv_tag=4
        )
        part = req.recv_part()
        assert (part.rank, part.source, part.tag) == (1, 0, 4)

    def test_collective_kinds_complete(self):
        names = {k.value for k in CollectiveKind}
        assert names == {
            "barrier", "bcast", "reduce", "allreduce",
            "gather", "allgather", "scatter", "alltoall",
        }


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_paper_apps_are_available(self):
        for name in repro.paper_apps():
            app = repro.get_app(name)
            assert hasattr(app, "program") and hasattr(app, "verify")

    def test_deployment_is_frozen(self):
        dep = repro.Deployment(nprocs=1, trials=1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            dep.nprocs = 2  # type: ignore[misc]
