"""Edge-case coverage for traced ops and plan/region interactions."""

import numpy as np
import pytest

from repro.errors import InjectionPlanError
from repro.fi.campaign import Deployment, run_campaign
from repro.fi.plan import sample_plan
from repro.fi.profile import InstructionProfile
from repro.fi.tracer import Tracer, TracerMode
from repro.taint.ops import FPOps
from repro.taint.region import Region
from repro.taint.tarray import TArray
from repro.taint.tracer_api import OpKind
from repro.utils.rng import spawn_rng
from tests.unit.test_campaign import TinyApp


class TestOpsEdges:
    def test_div_by_zero_propagates_inf(self, fp):
        out = fp.div(fp.asarray([1.0]), 0.0)
        assert np.isinf(out.to_numpy()[0])
        assert not out.diverged  # both paths equally infinite

    def test_min_max_on_diverged(self, fp):
        bad = TArray(np.array([1.0, 5.0]), np.array([1.0, -7.0]))
        assert fp.max(bad).value == 1.0
        assert fp.max(bad).golden_value == 5.0
        assert fp.min(bad).diverged

    def test_where_with_scalar_branches(self, fp):
        out = fp.where(np.array([True, False]), 1.5, fp.asarray([0.0, 0.0]))
        np.testing.assert_array_equal(out.to_numpy(), [1.5, 0.0])

    def test_sqrt_of_negative_faulty_gives_nan(self, fp):
        bad = TArray(np.array([4.0]), np.array([-4.0]))
        out = fp.sqrt(bad)
        assert np.isnan(out.to_numpy()[0])
        assert out.golden_numpy()[0] == 2.0

    def test_sum_of_empty(self, fp):
        assert fp.sum(fp.asarray(np.zeros(0))).value == 0.0

    def test_segment_sum_all_empty_segments(self, fp):
        out = fp.segment_sum(fp.asarray(np.zeros(0)), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out.to_numpy(), [0.0, 0.0])


class TestRegionMisconfiguration:
    def test_unique_region_plan_fails_without_unique_instructions(self):
        profile = InstructionProfile()
        profile.record(0, Region.COMMON, OpKind.ADD, 100)
        with pytest.raises(InjectionPlanError, match="no candidate instructions"):
            sample_plan(
                profile, spawn_rng(0, "x"), region=Region.PARALLEL_UNIQUE,
                target_rank=0,
            )

    def test_campaign_surfaces_the_misconfiguration(self):
        """TinyApp has no parallel-unique region: the deployment is a
        user error and must fail loudly, not silently succeed."""
        dep = Deployment(nprocs=2, trials=3, region=Region.PARALLEL_UNIQUE)
        with pytest.raises(InjectionPlanError):
            run_campaign(TinyApp(), dep)


class TestRegionStack:
    def test_nested_regions_restore(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        a = fp.asarray([1.0])
        with fp.region(Region.PARALLEL_UNIQUE):
            with fp.region(Region.COMMON):
                fp.add(a, a)
            assert fp.current_region is Region.PARALLEL_UNIQUE
            fp.add(a, a)
        assert fp.current_region is Region.COMMON
        assert tracer.profile.candidates(0, Region.COMMON) == 1
        assert tracer.profile.candidates(0, Region.PARALLEL_UNIQUE) == 1

    def test_region_restored_after_exception(self):
        fp = FPOps()
        with pytest.raises(RuntimeError):
            with fp.region(Region.PARALLEL_UNIQUE):
                raise RuntimeError("boom")
        assert fp.current_region is Region.COMMON
