"""Tests for the bit-field / operand sensitivity analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.fi.campaign import Deployment
from repro.fi.outcomes import Outcome
from repro.fi.sensitivity import SensitivityReport, run_sensitivity
from repro.numerics.bits import BitField
from repro.taint.tracer_api import Operand
from tests.unit.test_campaign import TinyApp


class TestReportAccounting:
    def _report(self):
        rep = SensitivityReport(
            app_name="x", deployment=Deployment(nprocs=1, trials=1)
        )
        rep.record(bit=3, operand=Operand.A, outcome=Outcome.SUCCESS)   # mantissa
        rep.record(bit=5, operand=Operand.A, outcome=Outcome.SDC)      # mantissa
        rep.record(bit=55, operand=Operand.B, outcome=Outcome.SDC)     # exponent
        rep.record(bit=63, operand=Operand.OUT, outcome=Outcome.FAILURE)  # sign
        return rep

    def test_success_rate_by_bit_field(self):
        rates = self._report().success_rate_by_bit_field()
        assert rates[BitField.MANTISSA] == pytest.approx(0.5)
        assert rates[BitField.EXPONENT] == 0.0
        assert rates[BitField.SIGN] == 0.0

    def test_failure_rate_by_bit_field(self):
        rates = self._report().failure_rate_by_bit_field()
        assert rates[BitField.SIGN] == 1.0
        assert rates[BitField.MANTISSA] == 0.0

    def test_success_rate_by_operand(self):
        rates = self._report().success_rate_by_operand()
        assert rates[Operand.A] == pytest.approx(0.5)
        assert rates[Operand.B] == 0.0

    def test_per_bit_counts(self):
        rep = self._report()
        assert rep.by_bit[3] == {Outcome.SUCCESS: 1}
        assert rep.by_bit[55] == {Outcome.SDC: 1}


class TestRunSensitivity:
    def test_end_to_end(self):
        rep = run_sensitivity(TinyApp(), Deployment(nprocs=2, trials=120, seed=1))
        total = sum(rep.by_bit_field.values())
        assert total == 120
        rates = rep.success_rate_by_bit_field()
        # low mantissa bits rarely move the checksum past tolerance
        assert rates[BitField.MANTISSA] > rates.get(BitField.EXPONENT, 0.0)

    def test_multi_error_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sensitivity(
                TinyApp(), Deployment(nprocs=1, trials=5, n_errors=2)
            )

    def test_deterministic(self):
        a = run_sensitivity(TinyApp(), Deployment(nprocs=1, trials=40, seed=3))
        b = run_sensitivity(TinyApp(), Deployment(nprocs=1, trials=40, seed=3))
        assert a.by_bit_field == b.by_bit_field
