"""Extra TArray coverage: divergence bookkeeping through data movement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.taint.tarray import TArray


def diverged_pair(n=6, lane=2, delta=1.0):
    g = np.arange(float(n))
    f = g.copy()
    f[lane] += delta
    return TArray(g, f)


class TestDivergenceThroughMovement:
    def test_reshape_preserves_divergence(self):
        t = diverged_pair()
        assert t.reshape(2, 3).diverged
        assert t.reshape(2, 3).ravel().diverged

    def test_transpose_preserves_divergence(self):
        t = diverged_pair(6).reshape(2, 3)
        assert t.transpose(1, 0).diverged

    def test_concatenate_collapse_when_dirty_lane_excluded(self):
        t = diverged_pair(6, lane=5)
        clean_part = t[:5]
        assert not clean_part.diverged
        combined = TArray.concatenate([clean_part, TArray.fresh([9.0])])
        assert not combined.diverged

    def test_stack_divergence(self):
        t = diverged_pair()
        assert TArray.stack([t, TArray.fresh(np.zeros(6))]).diverged

    def test_scatter_with_clean_values_shares(self):
        vals = TArray.fresh([1.0, 2.0])
        out = TArray.scatter(vals, np.array([0, 2]), 4)
        assert not out.diverged
        assert out.faulty is out.golden

    def test_getitem_scalar_lane(self):
        t = diverged_pair(4, lane=1)
        assert t[1:2].diverged
        assert not t[0:1].diverged

    @given(
        n=st.integers(2, 16),
        lane_frac=st.floats(0, 0.999),
        split_frac=st.floats(0.001, 0.999),
    )
    @settings(max_examples=40)
    def test_split_concat_roundtrip_tracks_dirty_lane(self, n, lane_frac, split_frac):
        lane = int(lane_frac * n)
        split = max(1, min(n - 1, int(split_frac * n)))
        t = diverged_pair(n, lane=lane)
        left, right = t[:split], t[split:]
        assert left.diverged == (lane < split)
        assert right.diverged == (lane >= split)
        rebuilt = TArray.concatenate([left, right])
        assert rebuilt.diverged
        np.testing.assert_array_equal(rebuilt.to_numpy(), t.to_numpy())
        np.testing.assert_array_equal(rebuilt.golden_numpy(), t.golden_numpy())


class TestCollapseSemantics:
    def test_constructor_collapses_equal_views(self):
        g = np.arange(4.0)
        t = TArray(g, np.arange(4.0))
        assert t.faulty is t.golden

    def test_infinite_values_still_compare(self):
        g = np.array([np.inf])
        assert not TArray(g, np.array([np.inf])).diverged
        assert TArray(g, np.array([-np.inf])).diverged

    def test_nan_vs_number_diverges(self):
        assert TArray(np.array([1.0]), np.array([np.nan])).diverged
