"""Tests for the fault-injection layer: profile, plan, tracer, outcomes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InjectionPlanError
from repro.fi.outcomes import Outcome, classify_outcome, outputs_identical
from repro.fi.plan import InjectionPlan, PlannedFlip, sample_plan
from repro.fi.profile import InstructionProfile
from repro.fi.tracer import Tracer, TracerMode
from repro.taint.region import Region
from repro.taint.tracer_api import Operand, OpKind
from repro.utils.rng import spawn_rng


def make_profile(counts):
    prof = InstructionProfile()
    for (rank, region, kind), c in counts.items():
        prof.record(rank, region, kind, c)
    return prof


SIMPLE = {
    (0, Region.COMMON, OpKind.ADD): 60,
    (0, Region.COMMON, OpKind.MUL): 40,
    (0, Region.PARALLEL_UNIQUE, OpKind.ADD): 10,
    (0, Region.COMMON, OpKind.DIV): 5,
    (1, Region.COMMON, OpKind.ADD): 100,
}


class TestProfile:
    def test_candidates(self):
        prof = make_profile(SIMPLE)
        assert prof.candidates(0) == 110
        assert prof.candidates(0, Region.COMMON) == 100
        assert prof.candidates(1) == 100

    def test_total_instructions_includes_passive(self):
        prof = make_profile(SIMPLE)
        assert prof.total_instructions(0) == 115
        assert prof.total_instructions() == 215

    def test_unique_fraction(self):
        prof = make_profile(SIMPLE)
        assert prof.parallel_unique_fraction() == pytest.approx(10 / 210)

    def test_ranks_and_merged(self):
        prof = make_profile(SIMPLE)
        assert prof.ranks == [0, 1]
        assert prof.merged()[OpKind.ADD] == 170

    def test_zero_counts_ignored(self):
        prof = InstructionProfile()
        prof.record(0, Region.COMMON, OpKind.ADD, 0)
        assert prof.counts == {}


class TestPlanSampling:
    def test_plan_fields_within_bounds(self):
        prof = make_profile(SIMPLE)
        for t in range(50):
            plan = sample_plan(prof, spawn_rng(1, t))
            (flip,) = plan.flips
            assert flip.rank in (0, 1)
            assert 0 <= flip.bit < 64
            assert flip.index < prof.candidates(flip.rank, flip.region)

    def test_victim_uniform_over_ranks(self):
        prof = make_profile(SIMPLE)
        victims = [
            sample_plan(prof, spawn_rng(2, t)).flips[0].rank for t in range(400)
        ]
        share = sum(v == 0 for v in victims) / len(victims)
        assert 0.38 < share < 0.62  # uniform despite unequal counts

    def test_region_restriction(self):
        prof = make_profile(SIMPLE)
        plan = sample_plan(
            prof, spawn_rng(3, 0), region=Region.PARALLEL_UNIQUE, target_rank=0
        )
        assert plan.flips[0].region is Region.PARALLEL_UNIQUE
        assert plan.flips[0].index < 10

    def test_multi_error_distinct_instructions(self):
        prof = make_profile(SIMPLE)
        plan = sample_plan(
            prof, spawn_rng(4, 0), n_errors=20, target_rank=0, region=Region.COMMON
        )
        assert plan.n_errors == 20
        keys = {(f.region, f.index) for f in plan.flips}
        assert len(keys) == 20

    def test_multibit_shares_instruction_and_operand(self):
        prof = make_profile(SIMPLE)
        plan = sample_plan(prof, spawn_rng(40, 0), bits_per_error=3)
        assert len(plan.flips) == 3
        assert len({(f.rank, f.region, f.index, f.operand) for f in plan.flips}) == 1
        assert len({f.bit for f in plan.flips}) == 3

    def test_multibit_validation(self):
        prof = make_profile(SIMPLE)
        with pytest.raises(InjectionPlanError):
            sample_plan(prof, spawn_rng(41, 0), bits_per_error=0)
        with pytest.raises(InjectionPlanError):
            sample_plan(prof, spawn_rng(41, 0), bits_per_error=65)

    def test_multi_error_requires_target_in_parallel(self):
        prof = make_profile(SIMPLE)
        with pytest.raises(InjectionPlanError):
            sample_plan(prof, spawn_rng(5, 0), n_errors=2)

    def test_too_many_errors_rejected(self):
        prof = make_profile({(0, Region.COMMON, OpKind.ADD): 3})
        with pytest.raises(InjectionPlanError):
            sample_plan(prof, spawn_rng(6, 0), n_errors=10, target_rank=0)

    def test_empty_profile_rejected(self):
        with pytest.raises(InjectionPlanError):
            sample_plan(InstructionProfile(), spawn_rng(7, 0))

    def test_unknown_target_rank(self):
        prof = make_profile(SIMPLE)
        with pytest.raises(InjectionPlanError):
            sample_plan(prof, spawn_rng(8, 0), target_rank=9)

    def test_bad_flip_fields(self):
        with pytest.raises(InjectionPlanError):
            PlannedFlip(rank=0, region=Region.COMMON, index=-1, operand=Operand.A, bit=0)
        with pytest.raises(InjectionPlanError):
            PlannedFlip(rank=0, region=Region.COMMON, index=0, operand=Operand.A, bit=64)


class TestTracerCursor:
    def _plan(self, *indices, region=Region.COMMON):
        return InjectionPlan(
            flips=tuple(
                PlannedFlip(rank=0, region=region, index=i, operand=Operand.A, bit=5)
                for i in indices
            )
        )

    def test_fires_inside_window(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(12))
        assert not tracer.account(0, Region.COMMON, OpKind.ADD, 10)
        fired = tracer.account(0, Region.COMMON, OpKind.ADD, 10)
        assert len(fired) == 1 and fired[0].offset == 2
        assert tracer.all_flips_activated

    def test_multiple_flips_one_window(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(3, 7, 25))
        fired = tracer.account(0, Region.COMMON, OpKind.MUL, 20)
        assert [f.offset for f in fired] == [3, 7]
        assert not tracer.all_flips_activated

    def test_region_streams_independent(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(0, region=Region.PARALLEL_UNIQUE))
        assert tracer.account(0, Region.COMMON, OpKind.ADD, 100) == ()
        fired = tracer.account(0, Region.PARALLEL_UNIQUE, OpKind.ADD, 1)
        assert len(fired) == 1

    def test_noncandidate_never_fires(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(0))
        assert tracer.account(0, Region.COMMON, OpKind.DIV, 50) == ()
        assert not tracer.all_flips_activated

    def test_unactivated_when_stream_too_short(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(99))
        tracer.account(0, Region.COMMON, OpKind.ADD, 10)
        assert not tracer.all_flips_activated
        assert tracer.contaminated_count() == 0

    def test_contaminated_count_includes_victim(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(0))
        tracer.account(0, Region.COMMON, OpKind.ADD, 1)
        assert tracer.contaminated_count() == 1  # victim counted
        tracer.mark_contaminated(4)
        assert tracer.contaminated_count() == 2

    def test_profile_mode_rejects_plan(self):
        with pytest.raises(ValueError):
            Tracer(TracerMode.PROFILE, self._plan(0))
        with pytest.raises(ValueError):
            Tracer(TracerMode.INJECT, None)

    def test_inject_mode_does_not_record_profile(self):
        tracer = Tracer(TracerMode.INJECT, self._plan(5))
        tracer.account(0, Region.COMMON, OpKind.ADD, 10)
        assert tracer.profile.counts == {}


class TestOutcomes:
    def test_identical_is_success(self):
        out = {"a": 1.0}
        assert classify_outcome(out, {"a": 1.0}, lambda o, r: False) is Outcome.SUCCESS

    def test_checker_pass_is_success(self):
        assert (
            classify_outcome({"a": 1.1}, {"a": 1.0}, lambda o, r: True)
            is Outcome.SUCCESS
        )

    def test_checker_fail_is_sdc(self):
        assert (
            classify_outcome({"a": 2.0}, {"a": 1.0}, lambda o, r: False)
            is Outcome.SDC
        )

    def test_outputs_identical_nan_aware(self):
        assert outputs_identical({"a": float("nan")}, {"a": float("nan")})
        assert not outputs_identical({"a": 1.0}, {"b": 1.0})
        assert not outputs_identical({"a": 1.0}, {"a": 2.0})

    def test_outputs_identical_arrays(self):
        assert outputs_identical({"a": np.ones(3)}, {"a": np.ones(3)})
        assert not outputs_identical({"a": np.ones(3)}, {"a": np.zeros(3)})
