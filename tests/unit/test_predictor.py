"""Tests for the fine-tuner and the Eq. 1/4/8 predictor on fixtures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fi.campaign import CampaignResult, Deployment
from repro.fi.outcomes import Outcome
from repro.model.finetune import AlphaFineTuner, needs_fine_tuning
from repro.model.predictor import (
    PredictionInputs,
    ResiliencePredictor,
    extrapolate_unique_fraction,
)
from repro.model.result import FaultInjectionResult


def campaign_from(joint, nprocs):
    return CampaignResult(
        app_name="fix",
        deployment=Deployment(nprocs=nprocs, trials=sum(joint.values())),
        joint=joint,
        parallel_unique_fraction=0.0,
        total_instructions=0,
        candidate_instructions=0,
        profile_time=0.0,
        injection_time=0.0,
    )


def fi(success, sdc=None, failure=0.0):
    sdc = 1.0 - success - failure if sdc is None else sdc
    return FaultInjectionResult.from_rates(success, sdc, failure)


#: small scale: 4 ranks, 60% of tests stay at 1 rank, 40% reach all 4;
#: conditional success: 0.9 given 1 contaminated, 0.5 given 4.
SMALL_JOINT = {
    (Outcome.SUCCESS, 1, True): 54,
    (Outcome.SDC, 1, True): 6,
    (Outcome.SUCCESS, 4, True): 20,
    (Outcome.SDC, 4, True): 20,
}


def make_inputs(serial=None, unique_result=None, fractions=None, probe=None):
    serial = serial or {1: fi(0.9), 32: fi(0.6), 48: fi(0.5), 64: fi(0.4)}
    return PredictionInputs(
        serial_samples=serial,
        small_campaign=campaign_from(SMALL_JOINT, nprocs=4),
        unique_result=unique_result,
        unique_fractions=fractions or {},
        serial_probe=probe,
    )


class TestTrigger:
    def test_needs_fine_tuning_threshold(self):
        assert needs_fine_tuning(fi(0.5), fi(0.8), threshold=0.2)
        assert not needs_fine_tuning(fi(0.75), fi(0.8), threshold=0.2)

    def test_trigger_uses_probe_emulation(self):
        # small overall success = 0.74; serial emulation with probe 0.1:
        # 0.6*0.9 + 0.4*0.1 = 0.58 -> disagreement > 20% -> fine-tune
        pred = ResiliencePredictor(make_inputs(probe=fi(0.1)))
        assert pred.fine_tuning_active
        # with a well-matching probe (0.5): 0.6*0.9+0.4*0.5 = 0.74 -> no
        pred2 = ResiliencePredictor(make_inputs(probe=fi(0.5)))
        assert not pred2.fine_tuning_active

    def test_trigger_without_probe_compares_single_error(self):
        pred = ResiliencePredictor(make_inputs(probe=None))
        # serial_1 success 0.9 vs small 0.74 -> 21.6% difference -> tuned
        assert pred.fine_tuning_active


class TestPredictCommon:
    def test_eq8_hand_computed(self):
        pred = ResiliencePredictor(make_inputs(probe=fi(0.5)))
        out = pred.predict_common(64)
        # weights from SMALL_JOINT: r' = (0.6, 0, 0, 0.4); samples (1,32,48,64)
        assert out.success == pytest.approx(0.6 * 0.9 + 0.4 * 0.4)

    def test_eq8_with_fine_tuning_replaces_samples(self):
        pred = ResiliencePredictor(make_inputs(probe=fi(0.0)))
        assert pred.fine_tuning_active
        out = pred.predict_common(64)
        # group 1 -> small conditional at 1 (0.9); group 4 -> cond at 4 (0.5)
        # groups 2,3 have zero weight
        assert out.success == pytest.approx(0.6 * 0.9 + 0.4 * 0.5)

    def test_prediction_in_convex_hull(self):
        pred = ResiliencePredictor(make_inputs(probe=fi(0.5)))
        out = pred.predict_common(64)
        rates = [r.success for r in pred.inputs.serial_samples.values()]
        assert min(rates) <= out.success <= max(rates)

    def test_missing_sample_raises(self):
        inputs = make_inputs(serial={1: fi(0.9), 32: fi(0.6)}, probe=fi(0.5))
        with pytest.raises(ConfigurationError):
            ResiliencePredictor(inputs).predict_common(64)

    def test_triple_sums_to_one(self):
        pred = ResiliencePredictor(make_inputs(probe=fi(0.5)))
        out = pred.predict_common(64)
        assert out.success + out.sdc + out.failure == pytest.approx(1.0)


class TestUniqueTerm:
    def test_ignored_when_fraction_small(self):
        pred = ResiliencePredictor(
            make_inputs(unique_result=fi(0.0), fractions={4: 0.001, 64: 0.001},
                        probe=fi(0.5))
        )
        assert pred.predict(64).success == pytest.approx(
            pred.predict_common(64).success
        )

    def test_eq1_weighting(self):
        pred = ResiliencePredictor(
            make_inputs(unique_result=fi(0.2), fractions={4: 0.10, 64: 0.30},
                        probe=fi(0.5))
        )
        common = pred.predict_common(64).success
        full = pred.predict(64).success
        assert full == pytest.approx(0.7 * common + 0.3 * 0.2)

    def test_missing_unique_result_falls_back_to_common(self):
        pred = ResiliencePredictor(
            make_inputs(unique_result=None, fractions={64: 0.4}, probe=fi(0.5))
        )
        assert pred.predict(64).success == pytest.approx(
            pred.predict_common(64).success
        )


class TestExtrapolation:
    def test_exact_point_preferred(self):
        assert extrapolate_unique_fraction({4: 0.1, 64: 0.3}, 64) == 0.3

    def test_single_point_log_scaling(self):
        out = extrapolate_unique_fraction({4: 0.1}, 16)
        assert out == pytest.approx(0.1 * 4 / 2)

    def test_two_point_fit(self):
        # exact log2 line: f = 0.05 * log2(p)
        out = extrapolate_unique_fraction({4: 0.10, 8: 0.15}, 64)
        assert out == pytest.approx(0.30, abs=1e-9)

    def test_empty_gives_zero(self):
        assert extrapolate_unique_fraction({}, 64) == 0.0

    def test_clamped(self):
        assert extrapolate_unique_fraction({4: 0.9}, 1 << 20) <= 0.95


class TestAlphaFineTuner:
    def test_group_replacement(self):
        tuner = AlphaFineTuner.from_campaign(campaign_from(SMALL_JOINT, nprocs=4))
        out = tuner.tuned_for_group(4, 4, fi(0.1))
        assert out.success == pytest.approx(0.5)  # small conditional at 4

    def test_missing_conditional_falls_back_down(self):
        tuner = AlphaFineTuner.from_campaign(campaign_from(SMALL_JOINT, nprocs=4))
        # group 3 -> conditional at 3 missing -> walks down to 1 (0.9)
        out = tuner.tuned_for_group(3, 4, fi(0.2))
        assert out.success == pytest.approx(0.9)

    def test_no_conditionals_keeps_serial(self):
        joint = {(Outcome.SUCCESS, 2, False): 10}  # only unactivated trials
        tuner = AlphaFineTuner.from_campaign(campaign_from(joint, nprocs=4))
        serial = fi(0.33)
        assert tuner.tuned_for_group(2, 4, serial) is serial

    @given(success=st.floats(0.0, 1.0))
    @settings(max_examples=30)
    def test_tuned_output_is_valid_distribution(self, success):
        tuner = AlphaFineTuner.from_campaign(campaign_from(SMALL_JOINT, nprocs=4))
        out = tuner.tuned_for_group(1, 4, fi(success))
        total = out.success + out.sdc + out.failure
        assert total == pytest.approx(1.0)
