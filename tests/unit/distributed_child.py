"""Child processes for the distributed-backend chaos tests.

Run as ``python distributed_child.py MODE [args...]`` (excluded from
pytest collection via tests/conftest.py).  Modes:

``worker``
    A real ``repro-worker`` — everything after the mode goes straight
    to :func:`repro.engine.distributed.worker_main`.

``quit-after``
    A worker that dies abruptly (``os._exit``, no goodbye — the wire
    sees exactly what a SIGKILL produces) after shipping N results.
    Deterministic stand-in for "worker killed mid-campaign".

``slow-worker``
    A real worker that sleeps before doing anything.  Lets a test put a
    misbehaving child (``stall``, ``garbage``) deterministically first
    in line: the bad child connects and takes/poisons a chunk while the
    healthy worker is still asleep.

``stall``
    Handshakes, accepts its first chunk, then never answers — the
    controller must hit its chunk deadline and requeue.

``garbage``
    Connects and writes bytes that are not a frame, then lingers — the
    controller must classify it as a protocol failure and drop it.
"""

from __future__ import annotations

import os
import socket
import sys
import time
from pathlib import Path


def _address(port_file: str, budget: float = 30.0) -> tuple[str, int]:
    """Poll the controller's port file until it appears."""
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        try:
            text = Path(port_file).read_text().strip()
        except OSError:
            text = ""
        if text:
            host, _, port = text.rpartition(":")
            return host, int(port)
        time.sleep(0.02)
    raise SystemExit(f"no controller address in {port_file}")


def _connect(port_file: str) -> socket.socket:
    host, port = _address(port_file)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)


def _handshake(sock: socket.socket):
    """hello -> init -> ready; returns the unpickled EngineContext."""
    from repro.engine.distributed import (
        _unpickle_b64,
        recv_frame,
        send_frame,
    )

    send_frame(sock, {"op": "hello", "pid": os.getpid(), "digests": []})
    init = recv_frame(sock)
    assert init is not None and init["op"] == "init", init
    ctx = _unpickle_b64(init["ctx"])
    send_frame(sock, {"op": "ready", "warm": False, "init_s": 0.0})
    return ctx


def mode_worker(argv: list[str]) -> int:
    from repro.engine.distributed import worker_main

    return worker_main(argv)


def mode_slow_worker(argv: list[str]) -> int:
    time.sleep(float(argv[0]))
    return mode_worker(argv[1:])


def mode_quit_after(argv: list[str]) -> int:
    """Ship N chunk results, then die without closing the conversation."""
    n, port_file = int(argv[0]), argv[1]
    from repro.engine.chunks import execute_chunk
    from repro.engine.distributed import _pickle_b64, recv_frame, send_frame

    sock = _connect(port_file)
    ctx = _handshake(sock)
    done = 0
    while True:
        message = recv_frame(sock)
        if message is None or message["op"] == "done":
            return 0
        payload = execute_chunk(
            ctx, int(message["start"]), int(message["stop"]), capture=True
        )
        send_frame(sock, {
            "op": "result", "start": payload.start, "stop": payload.stop,
            "payload": _pickle_b64(payload),
        })
        done += 1
        if done >= n:
            os._exit(9)  # abrupt: no flush, no close handshake


def mode_stall(argv: list[str]) -> int:
    """Take a chunk and sit on it until the controller hangs up."""
    port_file = argv[0]
    from repro.engine.distributed import recv_frame

    sock = _connect(port_file)
    _handshake(sock)
    message = recv_frame(sock)          # the chunk we will never run
    assert message is not None and message["op"] == "chunk", message
    try:
        sock.settimeout(60.0)
        sock.recv(1)                    # EOF when the controller drops us
    except OSError:
        pass
    return 0


def mode_garbage(argv: list[str]) -> int:
    """Write a frame whose length prefix is absurd, then linger."""
    port_file = argv[0]
    sock = _connect(port_file)
    sock.sendall(b"\xff\xff\xff\xff not a frame at all")
    try:
        sock.settimeout(60.0)
        sock.recv(1)                    # EOF when the controller drops us
    except OSError:
        pass
    return 0


MODES = {
    "worker": mode_worker,
    "slow-worker": mode_slow_worker,
    "quit-after": mode_quit_after,
    "stall": mode_stall,
    "garbage": mode_garbage,
}


if __name__ == "__main__":
    sys.exit(MODES[sys.argv[1]](sys.argv[2:]))
