"""The campaign execution engine: backends, folding, checkpoint/resume.

The hard guarantee under test: ``run_campaign(..., jobs=N)`` is
bit-identical — joint content *and* insertion order, records, events —
to the serial loop for any N, any checkpoint interval, and any
interruption-and-resume pattern in between.  Apps are module-level
classes so ``spawn`` workers can unpickle them.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.fi.campaign as campaign_mod
from repro import obs
from repro.engine import (
    CheckpointStore,
    ChunkAggregator,
    ChunkPayload,
    InlineBackend,
    ProcessPoolBackend,
    chunk_bounds,
    plan_chunks,
    select_backend,
)
from repro.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    WorkerCrashError,
)
from repro.fi.cache import cached_campaign
from repro.fi.campaign import (
    Deployment,
    default_checkpoint_every,
    default_resume,
    run_campaign,
)
from repro.fi.outcomes import Outcome


class EngineApp:
    """Distributed dot product: cheap, but exercises real injections."""

    name = "engine"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"engine(n={self.n},tol={self.tol})"


class FlagCrashApp(EngineApp):
    """Hard-exits in worker processes while ``flag_path`` exists.

    Deleting the flag file turns the app back into :class:`EngineApp`,
    so a campaign killed by crashing workers can be *resumed* by the
    very same app identity — the checkpoint-store key sees no change.
    """

    name = "flagcrash"

    def __init__(self, flag_path, **kwargs):
        super().__init__(**kwargs)
        self.flag_path = str(flag_path)
        self.parent_pid = os.getpid()

    def program(self, rank, size, comm, fp):
        if os.path.exists(self.flag_path) and os.getpid() != self.parent_pid:
            os._exit(5)
        return super().program(rank, size, comm, fp)

    def cache_key(self):
        return f"flagcrash(n={self.n},tol={self.tol})"


def _interrupt_after(n_trials: int):
    """Patch ``run_one_trial`` to raise KeyboardInterrupt after N calls.

    Returns the restore callable; the engine resolves ``run_one_trial``
    at call time, so the patch reaches inline chunk execution.
    """
    real = campaign_mod.run_one_trial
    calls = {"n": 0}

    def interrupted(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > n_trials:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    campaign_mod.run_one_trial = interrupted
    return lambda: setattr(campaign_mod, "run_one_trial", real)


@pytest.fixture(autouse=True)
def _isolated_store(tmp_cache):
    """Checkpoints (and any cache writes) land in a per-test directory."""
    yield


class TestChunkPlanning:
    def test_serial_uncheckpointed_is_one_chunk(self):
        assert plan_chunks(500, 1) == [(0, 500)]

    def test_checkpoint_interval_bounds_chunk_size(self):
        chunks = plan_chunks(10, 1, checkpoint_every=3)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_parallel_plan_matches_chunk_bounds(self):
        assert plan_chunks(200, 4) == chunk_bounds(200, 4)

    def test_plans_tile_the_trial_range(self):
        for trials, jobs, every in [(1, 1, 1), (7, 2, 3), (40, 4, None),
                                    (200, 3, 7), (1000, 16, 50)]:
            chunks = plan_chunks(trials, jobs, every)
            flat = [t for lo, hi in chunks for t in range(lo, hi)]
            assert flat == list(range(trials))

    def test_no_trials_no_chunks(self):
        assert plan_chunks(0, 4, checkpoint_every=2) == []


class TestBackendSelection:
    def test_serial_runs_inline(self):
        assert isinstance(select_backend(1, 10, capture=False), InlineBackend)

    def test_single_chunk_runs_inline_despite_jobs(self):
        assert isinstance(select_backend(4, 1, capture=False), InlineBackend)

    def test_parallel_uses_the_pool(self):
        backend = select_backend(2, 8, capture=True)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.live_events is False


class TestAggregator:
    def _payload(self, lo, hi, key=(Outcome.SUCCESS, 1, True)):
        return ChunkPayload(start=lo, stop=hi, joint={key: hi - lo})

    def test_out_of_order_arrival_folds_in_chunk_order(self):
        k1, k2 = (Outcome.SDC, 2, True), (Outcome.SUCCESS, 0, False)
        agg = ChunkAggregator([(0, 2), (2, 4)])
        agg.add(self._payload(2, 4, key=k2))  # later chunk arrives first
        assert agg.trials_folded == 0  # buffered, not folded
        agg.add(self._payload(0, 2, key=k1))
        joint, _ = agg.finish()
        # insertion order follows chunk order, not arrival order
        assert list(joint) == [k1, k2]

    def test_unexpected_chunk_rejected(self):
        agg = ChunkAggregator([(0, 2)])
        with pytest.raises(ValueError, match="unexpected chunk"):
            agg.add(self._payload(5, 9))

    def test_finish_reports_missing_chunks(self):
        agg = ChunkAggregator([(0, 2), (2, 4)])
        agg.add(self._payload(0, 2))
        with pytest.raises(RuntimeError, match="never[\\s\\S]*arrived"):
            agg.finish()


class TestCheckpointedParity:
    """Checkpointing must never change a campaign's result."""

    def _assert_identical(self, app, deployment, **kwargs):
        serial = run_campaign(app, deployment, keep_records=True, jobs=1)
        other = run_campaign(app, deployment, keep_records=True, **kwargs)
        assert other.joint == serial.joint
        assert list(other.joint) == list(serial.joint)
        assert other.records == serial.records

    def test_inline_checkpointed(self):
        self._assert_identical(
            EngineApp(), Deployment(nprocs=2, trials=10, seed=5),
            jobs=1, checkpoint_every=3,
        )

    def test_pool_checkpointed(self):
        self._assert_identical(
            EngineApp(), Deployment(nprocs=2, trials=10, seed=5),
            jobs=2, checkpoint_every=3,
        )

    def test_interval_larger_than_campaign(self):
        self._assert_identical(
            EngineApp(), Deployment(nprocs=1, trials=4, seed=2),
            jobs=1, checkpoint_every=100,
        )

    def test_store_removed_after_success(self):
        app, dep = EngineApp(), Deployment(nprocs=1, trials=6, seed=1)
        run_campaign(app, dep, jobs=1, checkpoint_every=2)
        assert not CheckpointStore(app, dep).dir.exists()


class TestInterruptAndResume:
    def test_resume_matches_uninterrupted(self):
        app = EngineApp()
        dep = Deployment(nprocs=2, trials=10, seed=5)
        clean = run_campaign(app, dep, keep_records=True, jobs=1)

        restore = _interrupt_after(6)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, dep, keep_records=True, jobs=1,
                             checkpoint_every=3)
        finally:
            restore()
        store = CheckpointStore(app, dep, keep_records=True)
        assert len(list(store.dir.glob("chunk-*.json"))) == 2

        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            resumed = run_campaign(app, dep, keep_records=True, jobs=1,
                                   checkpoint_every=3, resume=True)
        assert resumed.joint == clean.joint
        assert list(resumed.joint) == list(clean.joint)
        assert resumed.records == clean.records
        assert not store.dir.exists()

        (event,) = mem.of(obs.CampaignResumed)
        assert (event.trials_done, event.trials_total) == (6, 10)
        assert (event.chunks_done, event.chunks_total) == (2, 4)
        # replayed + fresh events cover every trial exactly once, in order
        assert [e.trial for e in mem.of(obs.TrialFinished)] == list(range(10))

    def test_resume_without_checkpoints_runs_normally(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=5, seed=3)
        clean = run_campaign(app, dep, jobs=1)
        resumed = run_campaign(app, dep, jobs=1, resume=True)
        assert resumed.joint == clean.joint

    def test_resume_under_different_worker_count(self):
        """The chunk layout is pinned at first write, not re-planned."""
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=10, seed=7)
        clean = run_campaign(app, dep, keep_records=True, jobs=1)
        restore = _interrupt_after(6)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, dep, keep_records=True, jobs=1,
                             checkpoint_every=3)
        finally:
            restore()
        resumed = run_campaign(app, dep, keep_records=True, jobs=2,
                               checkpoint_every=3, resume=True)
        assert resumed.joint == clean.joint
        assert list(resumed.joint) == list(clean.joint)
        assert resumed.records == clean.records

    def test_fresh_run_discards_stale_checkpoints(self):
        """Without --resume, leftovers must not leak into the result."""
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=8, seed=9)
        restore = _interrupt_after(4)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, dep, jobs=1, checkpoint_every=2)
        finally:
            restore()
        clean = run_campaign(app, dep, jobs=1)
        fresh = run_campaign(app, dep, jobs=1, checkpoint_every=2)
        assert fresh.joint == clean.joint


class TestWorkerCrash:
    def test_crash_names_first_unfinished_trial_range(self, tmp_path):
        flag = tmp_path / "crash.flag"
        flag.touch()
        app = FlagCrashApp(flag)
        with pytest.raises(WorkerCrashError,
                           match=r"trials \d+\.\.\d+") as excinfo:
            run_campaign(app, Deployment(nprocs=1, trials=6, seed=0), jobs=2)
        err = excinfo.value
        assert err.chunk_start is not None
        assert err.chunk_stop is not None
        assert 0 <= err.chunk_start < err.chunk_stop <= 6

    def test_resume_after_worker_crash(self, tmp_path):
        flag = tmp_path / "crash.flag"
        app = FlagCrashApp(flag)
        dep = Deployment(nprocs=1, trials=8, seed=4)
        clean = run_campaign(app, dep, keep_records=True, jobs=1)

        flag.touch()
        with pytest.raises(WorkerCrashError):
            run_campaign(app, dep, keep_records=True, jobs=2,
                         checkpoint_every=2)
        flag.unlink()  # the transient failure clears; same app identity
        resumed = run_campaign(app, dep, keep_records=True, jobs=1,
                               checkpoint_every=2, resume=True)
        assert resumed.joint == clean.joint
        assert list(resumed.joint) == list(clean.joint)
        assert resumed.records == clean.records


class TestCheckpointCorruption:
    def _interrupted_store(self, app, dep):
        restore = _interrupt_after(6)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, dep, jobs=1, checkpoint_every=3)
        finally:
            restore()
        return CheckpointStore(app, dep)

    def test_corrupt_chunk_raises_then_restarts_clean(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=10, seed=11)
        clean = run_campaign(app, dep, jobs=1)
        store = self._interrupted_store(app, dep)
        victim = sorted(store.dir.glob("chunk-*.json"))[0]
        victim.write_text("{ not json")

        with pytest.raises(CheckpointCorruptError) as excinfo:
            run_campaign(app, dep, jobs=1, checkpoint_every=3, resume=True)
        assert excinfo.value.path == str(victim)
        assert not victim.exists()  # damaged artifact removed on sight
        retried = run_campaign(app, dep, jobs=1, checkpoint_every=3,
                               resume=True)
        assert retried.joint == clean.joint

    def test_corrupt_manifest_wipes_store(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=10, seed=11)
        clean = run_campaign(app, dep, jobs=1)
        store = self._interrupted_store(app, dep)
        (store.dir / "meta.json").write_text("{ not json")

        with pytest.raises(CheckpointCorruptError):
            run_campaign(app, dep, jobs=1, checkpoint_every=3, resume=True)
        assert not store.dir.exists()
        retried = run_campaign(app, dep, jobs=1, checkpoint_every=3,
                               resume=True)
        assert retried.joint == clean.joint

    def test_foreign_manifest_is_stale_not_corrupt(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=10, seed=11)
        store = self._interrupted_store(app, dep)
        meta = json.loads((store.dir / "meta.json").read_text())
        meta["key"] = "somebody-else"
        (store.dir / "meta.json").write_text(json.dumps(meta))
        assert store.load() is None  # wiped silently, no typed error
        assert not store.dir.exists()

    def test_keep_records_is_part_of_the_identity(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=6, seed=2)
        with_records = CheckpointStore(app, dep, keep_records=True)
        without = CheckpointStore(app, dep, keep_records=False)
        assert with_records.dir != without.dir


class TestKnobResolution:
    def test_checkpoint_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "25")
        assert default_checkpoint_every() == 25

    def test_checkpoint_env_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        assert default_checkpoint_every() is None

    @pytest.mark.parametrize("raw", ["soon", "0", "-3"])
    def test_checkpoint_env_malformed_warns_and_disables(
        self, monkeypatch, capsys, raw
    ):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", raw)
        assert default_checkpoint_every() is None
        assert "REPRO_CHECKPOINT_EVERY" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "raw,expected",
        [("1", True), ("yes", True), ("0", False), ("false", False),
         ("no", False), ("", False)],
    )
    def test_resume_env(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_RESUME", raw)
        assert default_resume() is expected

    def test_deployment_validates_checkpoint_every(self):
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=1, trials=1, checkpoint_every=0)

    def test_env_drives_run_campaign(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "2")
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            run_campaign(EngineApp(), Deployment(nprocs=1, trials=4, seed=1))
        writes = mem.of(obs.CheckpointWritten)
        assert [(e.chunk_start, e.chunk_stop) for e in writes] == \
            [(0, 2), (2, 4)]
        assert writes[-1].trials_done == 4
        assert all(e.size_bytes > 0 for e in writes)

    def test_deployment_field_drives_run_campaign(self):
        app = EngineApp()
        dep = Deployment(nprocs=1, trials=4, seed=1, checkpoint_every=2)
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            run_campaign(app, dep)
        assert len(mem.of(obs.CheckpointWritten)) == 2


class TestCacheInteraction:
    def test_checkpoint_every_does_not_fork_cache_entries(self, tmp_cache):
        """checkpoint_every is an execution knob, not result identity."""
        app = EngineApp()
        first = cached_campaign(
            app, Deployment(nprocs=1, trials=8, seed=6, checkpoint_every=3)
        )
        assert len(list(tmp_cache.glob("engine-*.json"))) == 1
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            second = cached_campaign(
                app, Deployment(nprocs=1, trials=8, seed=6)
            )
        assert len(mem.of(obs.CacheHit)) == 1  # served, not recomputed
        assert second.joint == first.joint


class TestCrashResumeByteParity:
    """A hard-killed interpreter resumes to the byte-identical artifacts."""

    def test_joint_and_provenance_byte_identical(self, tmp_path):
        child = Path(__file__).with_name("engine_child.py")
        src = Path(repro.__file__).resolve().parents[1]
        env = {**os.environ,
               "PYTHONPATH": f"{src}{os.pathsep}" + os.environ.get(
                   "PYTHONPATH", "")}

        def run_child(mode, trace, out):
            return subprocess.run(
                [sys.executable, str(child), mode, str(tmp_path / trace),
                 str(tmp_path / out), str(tmp_path / "ckpt")],
                env=env, capture_output=True, text=True, timeout=300,
            )

        clean = run_child("clean", "clean.jsonl", "clean.json")
        assert clean.returncode == 0, clean.stderr

        crash = run_child("crash", "broken.jsonl", "unused.json")
        assert crash.returncode == 41, crash.stderr  # died mid-campaign
        ckpt_dirs = list((tmp_path / "ckpt" / "checkpoints").glob("cg-*"))
        assert ckpt_dirs, "the killed run left no checkpoints behind"

        resume = run_child("resume", "broken.jsonl", "resumed.json")
        assert resume.returncode == 0, resume.stderr

        clean_joint = json.loads((tmp_path / "clean.json").read_text())
        resumed_joint = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed_joint == clean_joint  # content *and* order
        assert (tmp_path / "broken.provenance.jsonl").read_bytes() == \
            (tmp_path / "clean.provenance.jsonl").read_bytes()
