"""Property-style tests for Wilson score intervals and rate bounds."""

import math

import pytest

from repro.fi.outcomes import Outcome
from repro.model.result import FaultInjectionResult
from repro.obs.confidence import ConfidenceInterval, wilson_interval


class TestWilsonInterval:
    def test_no_data_is_noninformative(self):
        ci = wilson_interval(0, 0)
        assert (ci.low, ci.high) == (0.0, 1.0)

    def test_always_within_unit_interval(self):
        for n in (1, 2, 5, 17, 100, 4000):
            for k in {0, 1, n // 2, n - 1, n}:
                ci = wilson_interval(k, n)
                assert 0.0 <= ci.low <= ci.high <= 1.0

    def test_covers_the_point_estimate(self):
        for n in (1, 3, 10, 250):
            for k in range(0, n + 1, max(1, n // 7)):
                assert wilson_interval(k, n).contains(k / n)

    def test_degenerate_rates_keep_positive_width(self):
        # p = 0 and p = 1: the Wald interval collapses, Wilson must not.
        for n in (1, 10, 1000):
            assert wilson_interval(0, n).width > 0
            assert wilson_interval(n, n).width > 0

    def test_width_narrows_monotonically_with_n(self):
        widths = [wilson_interval(n // 2, n).width for n in (8, 32, 128, 512, 2048)]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < widths[0] / 4  # ~1/sqrt(n) scaling

    def test_single_trial_stays_wide(self):
        assert wilson_interval(1, 1).width > 0.2
        assert wilson_interval(0, 1).width > 0.2

    def test_higher_z_widens(self):
        narrow = wilson_interval(30, 100, z=1.0)
        wide = wilson_interval(30, 100, z=2.576)
        assert wide.width > narrow.width
        assert wide.low < narrow.low and wide.high > narrow.high

    def test_matches_closed_form(self):
        k, n, z = 13, 40, 1.96
        p = k / n
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
        ci = wilson_interval(k, n, z=z)
        assert ci.low == pytest.approx(center - half)
        assert ci.high == pytest.approx(center + half)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            wilson_interval(-1, 5)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)
        with pytest.raises(ValueError):
            wilson_interval(1, 5, z=0.0)

    def test_interval_validates_ordering(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(0.7, 0.2)
        with pytest.raises(ValueError):
            ConfidenceInterval(-0.1, 0.5)

    def test_format_percent(self):
        assert wilson_interval(0, 0).format(as_percent=True) == "[0.0%, 100.0%]"


class TestResultIntervals:
    def test_measured_result_uses_wilson(self):
        fi = FaultInjectionResult(success=0.8, sdc=0.1, failure=0.1, n_trials=50)
        ci = fi.interval(Outcome.SUCCESS)
        assert ci == wilson_interval(40, 50)
        assert ci.contains(0.8)

    def test_predicted_result_without_bounds_is_point(self):
        fi = FaultInjectionResult.from_rates(0.9, 0.05, 0.05)
        ci = fi.interval(Outcome.SUCCESS)
        assert ci.low == ci.high == pytest.approx(0.9)

    def test_derived_bounds_take_precedence(self):
        bounds = {Outcome.SUCCESS: ConfidenceInterval(0.82, 0.98)}
        fi = FaultInjectionResult.from_rates(0.9, 0.05, 0.05, bounds=bounds)
        assert fi.interval(Outcome.SUCCESS) == bounds[Outcome.SUCCESS]
        # outcomes without derived bounds fall back to the point interval
        assert fi.interval(Outcome.SDC).width == 0.0

    def test_legacy_success_interval_unchanged(self):
        fi = FaultInjectionResult(success=0.8, sdc=0.1, failure=0.1, n_trials=50)
        lo, hi = fi.success_interval()
        half = 1.96 * math.sqrt(0.8 * 0.2 / 50)
        assert lo == pytest.approx(0.8 - half)
        assert hi == pytest.approx(0.8 + half)
