"""Dashboard rendering: self-contained HTML, charts, CLI behavior."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.cli import main
from repro.obs.dashboard import dashboard_path, render_dashboard, write_dashboard
from repro.obs.events import (
    CampaignStarted,
    SpanEnd,
    TrialFinished,
    TrialProvenance,
)
from repro.obs.sinks import JsonlSink
from repro.viz.svg import bar_chart_with_ci, heatmap

_EXTERNAL_REF = re.compile(r"""(?:src|href)\s*=\s*["']?(?:[a-z]+:)?//""", re.I)


def _write_trace(tmp_path, trials=6):
    trace = tmp_path / "run.jsonl"
    sink = JsonlSink(trace)
    sink.write(CampaignStarted(app="demo", nprocs=2, trials=trials,
                               n_errors=1, seed=0))
    sink.write(SpanEnd(path="campaign/profile", duration_s=0.2))
    for i in range(trials):
        sink.write(SpanEnd(path="campaign/trial", duration_s=0.05))
        sink.write(TrialFinished(
            trial=i, outcome="sdc" if i % 3 == 0 else "success",
            n_contaminated=1 + i % 2, activated=True, duration_s=0.05,
        ))
    sink.close()
    prov = tmp_path / "run.provenance.jsonl"
    psink = JsonlSink(prov, stamp_ts=False)
    for i in range(trials):
        psink.write(TrialProvenance(
            trial=i, outcome="sdc" if i % 3 == 0 else "success",
            n_contaminated=1 + i % 2, activated=True, detail="",
            planned=[{"rank": 0, "region": "common", "index": 5 * i,
                      "operand": "A", "bit": i * 9 % 64}],
            fired=[{"rank": 0, "region": "common", "op": "add",
                    "index": 5 * i, "operand": "A", "bits": [i * 9 % 64],
                    "pre": 1.0, "post": 3.0}],
            timeline=[[3 * i, 0]] + ([[3 * i + 1, 1]] if i % 2 else []),
        ))
    psink.close()
    return trace


class TestRenderDashboard:
    def test_self_contained_html(self, tmp_path):
        html = render_dashboard(_write_trace(tmp_path))
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert not _EXTERNAL_REF.search(html)

    def test_contains_all_sections_and_charts(self, tmp_path):
        html = render_dashboard(_write_trace(tmp_path))
        for section in ("Campaigns", "Outcome rates", "Fault sites",
                        "Contamination spread", "Phase timing"):
            assert section in html
        assert html.count("<svg") == 3  # whisker bars, heatmap, spread
        assert "Wilson" in html

    def test_works_without_provenance(self, tmp_path):
        trace = _write_trace(tmp_path)
        (tmp_path / "run.provenance.jsonl").unlink()
        html = render_dashboard(trace)
        assert "no provenance file found" in html
        assert "Outcome rates" in html

    def test_empty_trace_raises_value_error(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="no decodable events"):
            render_dashboard(empty)

    def test_missing_trace_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            render_dashboard(tmp_path / "nope.jsonl")

    def test_write_dashboard_default_path(self, tmp_path):
        trace = _write_trace(tmp_path)
        out = write_dashboard(trace)
        assert out == dashboard_path(trace)
        assert out.read_text().startswith("<!DOCTYPE html>")


class TestDashboardCli:
    def test_cli_builds_dashboard(self, tmp_path, capsys):
        trace = _write_trace(tmp_path)
        assert main(["obs-dashboard", str(trace)]) == 0
        assert dashboard_path(trace).is_file()
        assert "dashboard written to" in capsys.readouterr().out

    def test_cli_custom_output(self, tmp_path):
        trace = _write_trace(tmp_path)
        out = tmp_path / "custom.html"
        assert main(["obs-dashboard", str(trace), "-o", str(out)]) == 0
        assert out.is_file()

    def test_cli_missing_trace_exits_2(self, tmp_path, capsys):
        assert main(["obs-dashboard", str(tmp_path / "gone.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "no such trace file" in err and "Traceback" not in err

    def test_cli_empty_trace_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs-dashboard", str(empty)]) == 1
        assert "no decodable events" in capsys.readouterr().err

    def test_cli_warns_once_per_file_on_partial_lines(self, tmp_path, capsys):
        trace = _write_trace(tmp_path)
        with trace.open("a") as fh:
            fh.write('not json\n' * 3 + '{"type": "trial_fin')
        assert main(["obs-dashboard", str(trace)]) == 0
        err = capsys.readouterr().err
        # deduplicated: one summary line per file, not one per bad line
        assert f"{trace}: skipped 4 partial/corrupt lines" in err
        assert err.count("warning") == 1

    def test_quiet_progress_conflict_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--progress", "--quiet"])
        assert exc.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestChartPrimitives:
    def test_bar_chart_with_ci_is_valid_svg(self):
        svg = bar_chart_with_ci(
            ["A", "B"], [0.4, 0.9], [(0.3, 0.5), None], title="t"
        ).render()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        # one whisker (3 lines) beyond the 2 axes + 10 grid/tick lines
        assert svg.count("<line") >= 3

    def test_bar_chart_with_ci_validates_lengths(self):
        with pytest.raises(ValueError):
            bar_chart_with_ci(["A"], [0.5, 0.6], [None, None], title="t")

    def test_heatmap_is_valid_svg(self):
        svg = heatmap(
            ["r1", "r2"], list(range(8)),
            [[0, 1, 2, 3, 4, 5, 6, 7], [7, 6, 5, 4, 3, 2, 1, 0]],
            title="heat", col_label_every=4,
        ).render()
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        assert svg.count("<rect") >= 16

    def test_heatmap_validates_shape(self):
        with pytest.raises(ValueError):
            heatmap(["r1"], [0, 1], [[1, 2, 3]], title="bad")

    def test_heatmap_all_zero_matrix(self):
        svg = heatmap(["r"], [0, 1], [[0, 0]], title="z").render()
        assert "#ffffff" in svg
