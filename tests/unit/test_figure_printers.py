"""Printing paths of the figure harnesses (synthetic inputs)."""

from repro.experiments.figure56 import _print_figure
from repro.model.result import FaultInjectionResult


def fi(success):
    return FaultInjectionResult.from_rates(success, 1 - success, 0.0)


class TestPrintFigure:
    def test_prints_rows_and_summary(self, capsys):
        results = {
            "cg": {"predicted": fi(0.7), "measured": fi(0.8),
                   "error": 0.1, "fine_tuned": True},
            "ft": {"predicted": fi(0.6), "measured": fi(0.62),
                   "error": 0.02, "fine_tuned": False},
        }
        _print_figure("Title X", results)
        out = capsys.readouterr().out
        assert "Title X" in out
        assert "CG" in out and "FT" in out
        assert "average error 6.0 pp" in out
        assert "max 10.0 pp" in out
