"""Deeper unit tests of app internals: tables, meshes, guards, helpers."""

import math

import numpy as np
import pytest

from repro.apps.base import AppSpec, block_bounds, relative_error
from repro.apps.ft import FTApp
from repro.apps.mg import MGApp
from repro.apps.minife import MiniFEApp
from repro.apps.pennant import PennantApp
from repro.errors import SimulatedCrashError
from repro.taint.tarray import TArray


class TestBaseHelpers:
    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.5, 0.0) == 0.5  # scaled by max(|ref|, 1)
        assert relative_error(float("nan"), 1.0) == math.inf
        assert relative_error(1.0, float("inf")) == math.inf

    def test_block_bounds_partition(self):
        n, size = 10, 3
        bounds = [block_bounds(n, size, r) for r in range(size)]
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (a_lo, a_hi), (b_lo, b_hi) in zip(bounds, bounds[1:]):
            assert a_hi == b_lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_cache_key_reflects_params(self):
        a, b = FTApp(steps=2), FTApp(steps=3)
        assert a.cache_key() != b.cache_key()
        assert FTApp(steps=2).cache_key() == a.cache_key()

    def test_check_nprocs(self):
        app = FTApp(shape=(16, 4, 4))
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            app.check_nprocs(3, limit=16)
        with pytest.raises(ConfigurationError):
            app.check_nprocs(32, limit=16)
        app.check_nprocs(16, limit=16)


class TestFTTables:
    def test_local_twiddles_unit_magnitude(self):
        app = FTApp(shape=(16, 4, 4))
        for wr, wi in app._stage_table(16, inverse=False):
            np.testing.assert_allclose(wr**2 + wi**2, 1.0, atol=1e-12)

    def test_inverse_tables_are_conjugate(self):
        app = FTApp(shape=(16, 4, 4))
        fwd = app._stage_table(8, inverse=False)
        inv = app._stage_table(8, inverse=True)
        for (fr, fi_), (ir, ii) in zip(fwd, inv):
            np.testing.assert_allclose(fr, ir, atol=1e-12)
            np.testing.assert_allclose(fi_, -ii, atol=1e-12)

    def test_evolution_factor_bounds(self):
        app = FTApp(shape=(16, 4, 4), alpha=1e-3)
        assert np.all(app._factor <= 1.0)
        assert np.all(app._factor > 0.0)
        # the DC mode (frequency 0,0,0 sits at bit-reversed position 0)
        assert app._factor[0, 0, 0] == 1.0

    def test_cross_table_cached(self):
        app = FTApp(shape=(16, 4, 4))
        a = app._cross_table(4, 3, 0)
        b = app._cross_table(4, 3, 0)
        assert a is b


class TestMGDecomposition:
    def test_coords_roundtrip(self):
        dims = (2, 2, 2)
        for rank in range(8):
            coords = MGApp._coords(rank, dims)
            assert MGApp._rank_of(coords, dims) == rank

    def test_neighbor_wraps_periodically(self):
        app = MGApp(n=16, levels=3)
        dims = (2, 2, 2)
        assert app._neighbor((0, 0, 0), dims, axis=0, step=-1) == \
            app._rank_of((1, 0, 0), dims)

    def test_restrict_prolong_shapes(self):
        from repro.taint.ops import FPOps

        fp = FPOps()
        fine = TArray.fresh(np.arange(64.0).reshape(4, 4, 4))
        coarse = MGApp._restrict(fp, fine)
        assert coarse.shape == (2, 2, 2)
        back = MGApp._prolong(coarse)
        assert back.shape == (4, 4, 4)
        # prolongation repeats each coarse value over its 2x2x2 children
        np.testing.assert_array_equal(
            back.to_numpy()[0:2, 0:2, 0:2], np.full((2, 2, 2), coarse.to_numpy()[0, 0, 0])
        )

    def test_restrict_is_average(self):
        from repro.taint.ops import FPOps

        fp = FPOps()
        fine = TArray.fresh(np.ones((4, 4, 4)) * 3.0)
        coarse = MGApp._restrict(fp, fine)
        np.testing.assert_allclose(coarse.to_numpy(), 3.0)


class TestMiniFEMesh:
    @pytest.fixture(scope="class")
    def fe(self):
        return MiniFEApp(nz=8, ny=4, nx=4, cg_iters=4)

    def test_node_id_periodic_in_z(self, fe):
        assert fe._node_id(fe.nz, 0, 0) == fe._node_id(0, 0, 0)

    def test_element_nodes_shape(self, fe):
        ez, ey, ex = fe._all_elements()
        nodes = fe._element_nodes(ez, ey, ex)
        assert nodes.shape == (fe.nz * (fe.ny - 1) * (fe.nx - 1), 8)
        assert nodes.min() >= 0 and nodes.max() < fe.nz * fe._plane

    def test_pattern_symmetric(self, fe):
        pat = fe._pattern
        assert (pat != pat.T).nnz == 0

    def test_slot_of_inverts_pattern(self, fe):
        pat = fe._pattern
        rows = np.repeat(np.arange(pat.shape[0]), np.diff(pat.indptr))
        slots = fe._slot_of(rows[:50], pat.indices[:50])
        np.testing.assert_array_equal(slots, np.arange(50))

    def test_rank_setup_consistent_across_sizes(self, fe):
        for size in (1, 2, 4):
            total_owned = sum(
                fe._setup_rank(size, r)["o_elem"].size for r in range(size)
            )
            # every element contributes 64 pairs; all pairs are owned or ghost
            n_elems = fe.nz * (fe.ny - 1) * (fe.nx - 1)
            total_ghost = sum(
                fe._setup_rank(size, r)["gh_elem"].size for r in range(size)
            )
            assert total_owned + total_ghost == n_elems * 64

    def test_b_zero_mean(self, fe):
        assert abs(fe._b.mean()) < 1e-14


class TestPennantGuards:
    def test_guard_rejects_nonpositive(self):
        with pytest.raises(SimulatedCrashError):
            PennantApp._guard_positive(TArray.fresh([1.0, -0.5]), "density")
        with pytest.raises(SimulatedCrashError):
            PennantApp._guard_positive(TArray.fresh([float("nan")]), "energy")
        PennantApp._guard_positive(TArray.fresh([0.1, 2.0]), "fine")

    def test_node_mass_conserves_cell_mass(self):
        app = PennantApp(n_cells=32)
        assert app._node_mass.sum() == pytest.approx(app._mass.sum())

    def test_initial_discontinuity(self):
        app = PennantApp(n_cells=32)
        assert app._rho0[0] == app.rho_left
        assert app._rho0[-1] == app.rho_right

    def test_timestep_guard_triggers_on_bad_dt(self):
        """A non-finite CFL timestep must crash, not hang."""
        app = PennantApp(n_cells=16, steps=1)
        ref = app.reference_output(1)
        assert all(math.isfinite(v) for v in ref.values())
