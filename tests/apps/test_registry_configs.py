"""Registry configuration checks, including the Class-B-like variants."""

import pytest

from repro.apps import available_apps, get_app
from repro.errors import ConfigurationError


class TestRegistry:
    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown app"):
            get_app("bt")

    def test_fresh_instance_per_call(self):
        assert get_app("cg") is not get_app("cg")

    def test_class_variants_differ_from_base(self):
        assert get_app("cg").cache_key() != get_app("cg.classb").cache_key()
        assert get_app("ft").cache_key() != get_app("ft.classb").cache_key()
        assert get_app("minife").cache_key() != get_app("minife.large").cache_key()

    def test_classb_problems_are_larger(self):
        assert get_app("cg.classb").n > get_app("cg").n
        ft_s, ft_b = get_app("ft"), get_app("ft.classb")
        # NAS grows the distributed z axis from class S to B
        assert ft_b.shape[0] > ft_s.shape[0]
        fe_s, fe_b = get_app("minife"), get_app("minife.large")
        assert fe_b.ny * fe_b.nx > fe_s.ny * fe_s.nx

    @pytest.mark.parametrize("name", ["cg.classb", "ft.classb", "minife.large"])
    def test_variants_scale_consistently(self, name):
        app = get_app(name)
        serial = app.reference_output(1)
        par = app.reference_output(4)
        assert app.verify(par, serial)

    def test_available_apps_sorted_and_complete(self):
        names = available_apps()
        assert names == sorted(names)
        assert len(names) == 9
