"""CG benchmark: numerics vs scipy, scale consistency, fault behaviour."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.apps.cg import CGApp, _make_spd_matrix
from repro.errors import ConfigurationError
from repro.fi import Deployment, run_campaign
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim import execute_spmd
from repro.taint.region import Region


@pytest.fixture(scope="module")
def app():
    return CGApp(n=128, nnz_per_row=16, niter=1, cg_iters=6)


class TestMatrix:
    def test_spd(self):
        m = _make_spd_matrix(64, 8, seed=1)
        dense = m.toarray()
        np.testing.assert_allclose(dense, dense.T)
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0

    def test_deterministic(self):
        a = _make_spd_matrix(32, 8, seed=5)
        b = _make_spd_matrix(32, 8, seed=5)
        assert (a != b).nnz == 0


class TestNumerics:
    def test_zeta_against_scipy_inverse(self, app):
        """zeta = shift + 1/(x . A^-1 x) after convergence (approx)."""
        out = app.reference_output(1)
        m = app._matrix
        x = np.ones(app.n)
        z = spla.spsolve(m.tocsc(), x)
        # one power iteration with exact solve:
        zeta_exact = app.shift + 1.0 / (x @ z)
        # our inner CG is truncated, so compare loosely
        assert out["zeta"] == pytest.approx(zeta_exact, rel=0.05)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_parallel_matches_serial_exactly(self, app, p):
        serial = app.reference_output(1)
        par = app.reference_output(p)
        assert par["zeta"] == pytest.approx(serial["zeta"], abs=1e-12)

    def test_residual_small(self, app):
        out = app.reference_output(1)
        assert out["rnorm"] < 1e-2


class TestStructure:
    def test_serial_has_no_parallel_unique(self, app):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(app.program, 1, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() == 0.0

    def test_parallel_unique_grows_with_scale(self, app):
        fracs = []
        for p in (2, 4, 8):
            tracer = Tracer(TracerMode.PROFILE)
            execute_spmd(app.program, p, sink=tracer)
            fracs.append(tracer.profile.parallel_unique_fraction())
        assert 0 < fracs[0] < fracs[1] < fracs[2]

    def test_all_ranks_do_same_work(self, app):
        """Ranks differ only through the random sparsity of their column
        blocks (paper assumption 2: same computation on every process)."""
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(app.program, 4, sink=tracer)
        counts = [tracer.profile.candidates(r) for r in range(4)]
        assert max(counts) - min(counts) <= 0.2 * max(counts)

    def test_invalid_nprocs(self, app):
        with pytest.raises(ConfigurationError):
            app.reference_output(3)

    def test_n_must_be_multiple_of_128(self):
        with pytest.raises(ConfigurationError):
            CGApp(n=100)


class TestFaultInjection:
    def test_campaign_smoke(self, app):
        res = run_campaign(app, Deployment(nprocs=4, trials=25, seed=1))
        assert res.n_trials == 25
        assert res.success_rate + res.sdc_rate + res.failure_rate == pytest.approx(1.0)
        assert res.activation_rate() > 0.9

    def test_unique_region_injection(self, app):
        dep = Deployment(nprocs=4, trials=10, region=Region.PARALLEL_UNIQUE, seed=2)
        res = run_campaign(app, dep)
        assert res.n_trials == 10

    def test_verify_tolerance(self, app):
        ref = {"zeta": 10.0, "rnorm": 0.0}
        assert app.verify({"zeta": 10.0 + 1e-12, "rnorm": 0.0}, ref)
        assert not app.verify({"zeta": 10.1, "rnorm": 0.0}, ref)
        assert not app.verify({"zeta": float("nan"), "rnorm": 0.0}, ref)
