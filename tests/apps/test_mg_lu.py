"""MG and LU benchmarks: numerics, scale consistency, propagation shape."""

import numpy as np
import pytest

from repro.apps.lu import LUApp
from repro.apps.mg import MGApp, _factor_grid
from repro.errors import ConfigurationError
from repro.fi import Deployment, run_campaign
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim import execute_spmd


@pytest.fixture(scope="module")
def mg():
    return MGApp(n=16, cycles=2, levels=3)


@pytest.fixture(scope="module")
def lu():
    return LUApp(nz=16, ny=6, nx=6, itmax=2)


class TestFactorGrid:
    def test_factors(self):
        assert _factor_grid(1) == (1, 1, 1)
        assert _factor_grid(2) == (2, 1, 1)
        assert _factor_grid(8) == (2, 2, 2)
        assert _factor_grid(64) == (4, 4, 4)


class TestMG:
    def test_vcycles_reduce_residual(self, mg):
        """The V-cycles must actually damp the residual vs the RHS norm."""
        out = mg.reference_output(1)
        rhs_norm = np.linalg.norm(mg._rhs)
        assert 0 < out["rnm2"] < rhs_norm

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_parallel_matches_serial(self, mg, p):
        import pytest as _pt
        assert mg.reference_output(p)["rnm2"] == _pt.approx(
            mg.reference_output(1)["rnm2"], rel=1e-12
        )

    def test_no_parallel_unique(self, mg):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(mg.program, 8, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() == 0.0

    def test_rhs_zero_mean(self, mg):
        assert abs(mg._rhs.mean()) < 1e-15

    def test_campaign_produces_intermediate_contamination(self, mg):
        """Halo creep yields contaminated counts strictly between 1 and p."""
        res = run_campaign(mg, Deployment(nprocs=8, trials=60, seed=2))
        counts = res.propagation_counts()
        assert any(1 < n < 8 for n in counts)

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            MGApp(n=12)
        with pytest.raises(ConfigurationError):
            MGApp(n=8, levels=4)


class TestLU:
    def test_ssor_reduces_residual(self, lu):
        out = lu.reference_output(1)
        b_norm = np.linalg.norm(lu._rhs)
        assert 0 < out["rsdnm"] < b_norm

    @pytest.mark.parametrize("p", [2, 4, 8, 16])
    def test_parallel_matches_serial(self, lu, p):
        import pytest as _pt
        assert lu.reference_output(p)["rsdnm"] == _pt.approx(
            lu.reference_output(1)["rsdnm"], rel=1e-12
        )

    def test_no_parallel_unique(self, lu):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(lu.program, 4, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() == 0.0

    def test_propagation_mostly_all_or_one(self, lu):
        """The pipeline + per-iteration norm allreduce gives LU its
        missing-middle propagation profile (paper Fig. 3)."""
        res = run_campaign(lu, Deployment(nprocs=8, trials=60, seed=4))
        counts = res.propagation_counts()
        edge_mass = counts.get(1, 0) + counts.get(8, 0)
        assert edge_mass / sum(counts.values()) > 0.8

    def test_nz_power_of_two_required(self):
        with pytest.raises(ConfigurationError):
            LUApp(nz=12)

    def test_verify(self, lu):
        ref = lu.reference_output(1)
        assert lu.verify(dict(ref), ref)
        assert not lu.verify({"rsdnm": ref["rsdnm"] * 1.5}, ref)
