"""Golden-value regression pins for the registry configurations.

These lock the fault-free outputs of the canonical benchmark
configurations.  If a refactor of the substrate or an app changes any of
these values, campaigns cached on disk become stale and published
experiment numbers shift — this test makes that visible immediately.
(Intentional numerics changes should update both the constants here and
``repro.fi.cache._CACHE_VERSION``.)
"""

import pytest

from repro.apps import get_app

GOLDEN = {
    "cg": {"zeta": 21.676945940525293, "rnorm": 0.0003892107805146604},
    "ft": {
        "checksum_0": 208.01192585859647,
        "checksum_1": -182.4634502674909,
        "checksum_2": 7315.724166754811,
        "checksum_3": 208.01192585859647,
        "checksum_4": -182.46345026749088,
        "checksum_5": 3914.594584123068,
    },
    "mg": {"rnm2": 1.08200783904079},
    "lu": {"rsdnm": 20.072316249965468},
    "minife": {"rnorm": 5.209878326508852, "xnorm": 27.74214865790004},
    "pennant": {
        "kinetic": 0.0006497875130335811,
        "internal": 0.049269316348211814,
        "profile": 0.1203492500984151,
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_reference_outputs_pinned(name):
    out = get_app(name).reference_output(1)
    assert set(out) == set(GOLDEN[name])
    for key, expected in GOLDEN[name].items():
        assert out[key] == pytest.approx(expected, rel=1e-12), (name, key)
