"""MiniFE and PENNANT benchmarks: numerics, conservation, crash detectors."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.minife import MiniFEApp, _hex_stiffness
from repro.apps.pennant import PennantApp
from repro.errors import ConfigurationError
from repro.fi import Deployment, Outcome, run_campaign
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim import execute_spmd


@pytest.fixture(scope="module")
def fe():
    return MiniFEApp(nz=16, ny=5, nx=5, cg_iters=8)


@pytest.fixture(scope="module")
def hydro():
    return PennantApp(n_cells=64, steps=12)


class TestHexStiffness:
    def test_symmetric_with_zero_row_sums(self):
        k = _hex_stiffness()
        np.testing.assert_allclose(k, k.T, atol=1e-12)
        # gradients of a constant field vanish: rows sum to zero
        np.testing.assert_allclose(k.sum(axis=1), 0.0, atol=1e-12)

    def test_positive_semidefinite(self):
        eigs = np.linalg.eigvalsh(_hex_stiffness())
        assert eigs.min() > -1e-12


class TestMiniFEAssembly:
    def test_assembled_matrix_matches_direct_assembly(self, fe):
        """Run the traced assembly serially and compare against a plain
        scipy COO assembly of the same mesh."""
        d = fe._setup_rank(1, 0)

        def prog(rank, size, comm, fp):
            coef = fp.asarray(d["coef_local"])
            contrib = fp.mul(coef[d["o_elem"]], d["o_kv"])
            data = fp.segment_sum(contrib, d["seg_indptr"])
            yield comm.barrier()
            return data.to_numpy()

        data = execute_spmd(prog, 1)[0]
        # independent assembly
        ez, ey, ex = fe._all_elements()
        nodes = fe._element_nodes(ez, ey, ex)
        gi = np.repeat(nodes, 8, axis=1).ravel()
        gj = np.tile(nodes, (1, 8)).ravel()
        vals = np.tile(fe._kref.ravel(), ez.size) * np.repeat(
            fe._coef.ravel(), 64
        )
        n = fe.nz * fe._plane
        ref = sp.coo_matrix((vals, (gi, gj)), shape=(n, n)).tocsr()
        ref.sum_duplicates()
        ref.sort_indices()
        np.testing.assert_allclose(data, ref.data, rtol=1e-12)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_parallel_matches_serial(self, fe, p):
        serial = fe.reference_output(1)
        par = fe.reference_output(p)
        assert par["rnorm"] == pytest.approx(serial["rnorm"], rel=1e-10)
        assert par["xnorm"] == pytest.approx(serial["xnorm"], rel=1e-10)

    def test_cg_reduces_residual(self, fe):
        out = fe.reference_output(1)
        assert out["rnorm"] < np.linalg.norm(fe._b)

    def test_parallel_unique_small_but_present(self, fe):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(fe.program, 4, sink=tracer)
        frac = tracer.profile.parallel_unique_fraction()
        assert 0 < frac < 0.05

    def test_checker_accepts_residual_level_deviation(self, fe):
        ref = fe.reference_output(1)
        ok = dict(ref)
        ok["rnorm"] = ref["rnorm"] * 2  # still converged
        assert fe.verify(ok, ref)
        bad = dict(ref)
        bad["rnorm"] = ref["rnorm"] * 100
        assert not fe.verify(bad, ref)
        drift = dict(ref)
        drift["xnorm"] = ref["xnorm"] * 1.01
        assert not fe.verify(drift, ref)

    def test_nz_validation(self):
        with pytest.raises(ConfigurationError):
            MiniFEApp(nz=10)


class TestPennantPhysics:
    def test_energy_conserved_in_reference(self, hydro):
        """Total energy drift of the staggered scheme stays small."""
        out = hydro.reference_output(1)
        e0 = float(np.sum(hydro._mass * hydro._e0))  # initial KE is zero
        drift = abs(out["kinetic"] + out["internal"] - e0) / e0
        assert drift < 0.05

    def test_shock_generates_kinetic_energy(self, hydro):
        out = hydro.reference_output(1)
        assert out["kinetic"] > 0

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_parallel_matches_serial(self, hydro, p):
        serial = hydro.reference_output(1)
        par = hydro.reference_output(p)
        for key, val in serial.items():
            assert par[key] == pytest.approx(val, rel=1e-12)

    def test_no_parallel_unique(self, hydro):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(hydro.program, 4, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() == 0.0

    def test_crash_detectors_produce_failures(self, hydro):
        """PENNANT is the suite's benchmark with a real FAILURE rate."""
        res = run_campaign(hydro, Deployment(nprocs=4, trials=150, seed=6))
        assert res.outcome_count(Outcome.FAILURE) > 0

    def test_min_two_cells_per_rank(self, hydro):
        with pytest.raises(ConfigurationError):
            hydro.reference_output(64)  # 64 cells / 64 ranks = 1 < 2
