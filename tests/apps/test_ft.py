"""FT benchmark: FFT correctness vs numpy, scale consistency, regions."""

import math

import numpy as np
import pytest

from repro.apps.ft import FTApp, _Complex, _bitrev_indices, _signed_freq
from repro.errors import ConfigurationError
from repro.fi import Deployment, run_campaign
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim import execute_spmd


@pytest.fixture(scope="module")
def app():
    return FTApp(shape=(16, 4, 4), steps=2, alpha=1e-3)


class TestHelpers:
    def test_bitrev(self):
        np.testing.assert_array_equal(_bitrev_indices(8), [0, 4, 2, 6, 1, 5, 3, 7])

    def test_signed_freq(self):
        np.testing.assert_array_equal(
            _signed_freq(np.arange(8), 8), [0, 1, 2, 3, 4, -3, -2, -1]
        )


class TestFFTCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_distributed_z_fft_matches_numpy(self, app, p):
        nz = app.shape[0]
        rng = np.random.default_rng(3)
        xr = rng.standard_normal((nz, 1, 1))
        xi = rng.standard_normal((nz, 1, 1))

        def prog(rank, size, comm, fp):
            n2 = nz // size
            u = _Complex(
                fp.asarray(xr[rank * n2 : (rank + 1) * n2]),
                fp.asarray(xi[rank * n2 : (rank + 1) * n2]),
            )
            u = yield from app._fft_z(fp, comm, rank, size, u, inverse=False)
            return u.re.to_numpy() + 1j * u.im.to_numpy()

        outs = execute_spmd(prog, p)
        full = np.concatenate(outs, axis=0).ravel()
        ref = np.fft.fft((xr + 1j * xi).ravel())[_bitrev_indices(nz)]
        np.testing.assert_allclose(full, ref, atol=1e-10)

    @pytest.mark.parametrize("p", [1, 4])
    def test_roundtrip_identity(self, app, p):
        nz = app.shape[0]
        rng = np.random.default_rng(4)
        x = rng.standard_normal((nz, 1, 1)) + 1j * rng.standard_normal((nz, 1, 1))

        def prog(rank, size, comm, fp):
            n2 = nz // size
            u = _Complex(
                fp.asarray(x.real[rank * n2 : (rank + 1) * n2]),
                fp.asarray(x.imag[rank * n2 : (rank + 1) * n2]),
            )
            u = yield from app._fft_z(fp, comm, rank, size, u, inverse=False)
            u = yield from app._fft_z(fp, comm, rank, size, u, inverse=True)
            return (u.re.to_numpy() + 1j * u.im.to_numpy()) / nz

        outs = execute_spmd(prog, p)
        np.testing.assert_allclose(np.concatenate(outs, axis=0), x, atol=1e-12)

    def test_spectral_evolution_matches_numpy_reference(self, app):
        out = app.reference_output(1)
        u0 = app._u0_re + 1j * app._u0_im
        uh = np.fft.fftn(u0)
        nz, ny, nx = app.shape
        ks = [np.fft.fftfreq(n) * n for n in (nz, ny, nx)]
        k2 = (
            ks[0][:, None, None] ** 2
            + ks[1][None, :, None] ** 2
            + ks[2][None, None, :] ** 2
        )
        fac = np.exp(-4 * math.pi**2 * app.alpha * k2)
        w = np.fft.ifftn(uh * fac)
        assert out["checksum_0"] == pytest.approx(w.sum().real, abs=1e-9)
        assert out["checksum_1"] == pytest.approx(w.sum().imag, abs=1e-9)
        assert out["checksum_2"] == pytest.approx((np.abs(w) ** 2).sum(), rel=1e-12)

    @pytest.mark.parametrize("p", [2, 8, 16])
    def test_parallel_matches_serial(self, app, p):
        serial = app.reference_output(1)
        par = app.reference_output(p)
        for key, val in serial.items():
            assert par[key] == pytest.approx(val, abs=1e-9)


class TestStructure:
    def test_serial_all_common(self, app):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(app.program, 1, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() == 0.0

    def test_parallel_unique_is_largest_of_suite(self, app):
        """FT's cross-rank stages give it a large unique share (Table 1)."""
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(app.program, 4, sink=tracer)
        assert tracer.profile.parallel_unique_fraction() > 0.05

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            FTApp(shape=(12, 4, 4))


class TestFaultInjection:
    def test_campaign_smoke(self, app):
        res = run_campaign(app, Deployment(nprocs=4, trials=20, seed=3))
        assert res.success_rate + res.sdc_rate + res.failure_rate == pytest.approx(1.0)

    def test_verifier_rejects_nan(self, app):
        ref = app.reference_output(1)
        broken = dict(ref)
        broken["checksum_0"] = float("nan")
        assert not app.verify(broken, ref)
        assert app.verify(dict(ref), ref)
