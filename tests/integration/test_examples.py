"""Smoke tests for the runnable examples (tiny trial counts)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, capsys, script: str, *args: str) -> str:
    monkeypatch.setattr(sys, "argv", [script, *args])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "quickstart.py",
            "--trials", "12", "--nprocs", "4", "--app", "lu",
        )
        assert "success rate" in out
        assert "error propagation" in out

    def test_propagation_study(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "propagation_study.py",
            "--app", "mg", "--scales", "2", "--large", "4", "--trials", "15",
        )
        assert "cosine similarity" in out
        assert "Eq. 5 projection" in out

    def test_custom_app(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "custom_app.py", "--trials", "20")
        assert "predicted success at 16 ranks" in out
        assert "prediction error" in out

    def test_extreme_scale(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "extreme_scale.py",
            "--app", "mg", "--small", "4", "--targets", "16", "32",
            "--trials", "10",
        )
        assert "target ranks" in out
        assert "no execution at any target scale" in out

    def test_predict_large_scale_small_target(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "predict_large_scale.py",
            "--app", "mg", "--small", "4", "--target", "8",
            "--trials", "12", "--validate",
        )
        assert "predicted at 8 ranks" in out
        assert "prediction error" in out


class TestReportHelpers:
    def test_markdown_table(self):
        from repro.experiments.report import _table

        md = _table(["a", "b"], [["1", "2"], ["3", "4"]])
        assert md.splitlines()[1] == "|---|---|"
        assert "| 3 | 4 |" in md

    def test_paper_constants_cover_all_experiments(self):
        from repro.experiments.report import PAPER

        assert set(PAPER["table2"]) == {"cg", "ft", "mg", "lu", "minife", "pennant"}
        assert PAPER["figure5"]["avg"] == 0.08
