"""Large-scale structural checks (profile-only runs — no campaigns)."""

import pytest

from repro.apps import get_app, paper_apps
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim import execute_spmd


@pytest.mark.parametrize("name", paper_apps())
def test_every_app_runs_at_64_ranks(name):
    """The evaluation scale of Figs. 5/6 and Table 2 must be reachable."""
    app = get_app(name)
    tracer = Tracer(TracerMode.PROFILE)
    outs = execute_spmd(app.program, 64, sink=tracer)
    assert outs[0] is not None
    assert app.verify(outs[0], app.reference_output(1))
    # every rank executed candidate instructions (assumption 2 of §2)
    assert len(tracer.profile.ranks) == 64


@pytest.mark.parametrize("name", ["cg", "ft"])
def test_figure7_apps_run_at_128_ranks(name):
    app = get_app(name)
    outs = execute_spmd(app.program, 128)
    assert app.verify(outs[0], app.reference_output(1))


@pytest.mark.parametrize("name", paper_apps())
def test_unique_fraction_defined_at_all_scales(name):
    app = get_app(name)
    for p in (2, 8):
        tracer = Tracer(TracerMode.PROFILE)
        execute_spmd(app.program, p, sink=tracer)
        frac = tracer.profile.parallel_unique_fraction()
        assert 0.0 <= frac < 0.95
