"""Integration tests for the experiment harnesses (tiny trial counts).

These exercise the full orchestration path — cached campaigns, model
assembly, table rendering — at scaled-down sizes so the suite stays
fast; the benchmark harness runs the real configurations.
"""

import pytest

from repro.experiments import common, figure3, figure56, motivation, table1
from repro.experiments.cli import main as cli_main
from repro.apps import get_app

TRIALS = 12


class TestCommon:
    def test_default_trials_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "123")
        assert common.default_trials() == 123
        assert common.default_trials(7) == 7

    def test_unique_fraction_cached(self):
        app = get_app("cg")
        a = common.unique_fraction(app, 2)
        b = common.unique_fraction(app, 2)
        assert a == b > 0

    def test_serial_sample_results_keys(self):
        app = get_app("cg")
        out = common.serial_sample_results(app, target_nprocs=8, n_samples=4,
                                           trials=TRIALS, seed=3)
        assert set(out) == {1, 4, 6, 8}

    def test_build_predictor_modes(self):
        pred = common.build_predictor(
            "mg", small_nprocs=4, target_nprocs=8, trials=TRIALS,
            prob2_mode="extrapolate",
        )
        fi = pred.predict(8)
        assert 0.0 <= fi.success <= 1.0
        with pytest.raises(ValueError):
            common.build_predictor(
                "mg", small_nprocs=4, target_nprocs=8, trials=TRIALS,
                prob2_mode="bogus",
            )


class TestHarnesses:
    def test_table1(self, capsys):
        out = table1.run(quiet=False)
        printed = capsys.readouterr().out
        assert "Table 1" in printed
        assert out["fractions"]["mg"] == 0.0
        assert out["fractions"]["ft"] > 0.05
        assert 0 < out["fractions"]["cg"] < 0.2

    def test_motivation(self):
        out = motivation.run(trials=TRIALS, quiet=True)
        assert out["par4_events"] > out["serial_events"]
        assert out["par4_injection_time"] > 0

    def test_figure3_subset(self, monkeypatch):
        # restrict to one cheap app by monkeypatching the roster
        monkeypatch.setattr("repro.experiments.figure3.paper_apps", lambda: ["mg"])
        out = figure3.run(trials=TRIALS, quiet=True)
        assert len(out["mg"]["serial"]) == 8
        assert all(0 <= s <= 1 for s in out["mg"]["serial"])

    def test_figure56_machinery_small_target(self):
        res = figure56.accuracy_for_small_scale(
            4, target_nprocs=8, trials=TRIALS, apps=["mg"]
        )
        assert 0 <= res["mg"]["error"] <= 1

    def test_figure12_small_scales(self, capsys):
        from repro.experiments import figure12

        out = figure12.run(trials=TRIALS, apps=("mg",), small=4, large=8)
        printed = capsys.readouterr().out
        assert "error" in printed and "propagation" in printed
        assert len(out["mg"]["grouped"]) == 4
        assert abs(sum(out["mg"]["small"]) - 1.0) < 1e-9

    def test_table2_small_scales(self):
        from repro.experiments import table2

        out = table2.run(trials=TRIALS, quiet=True, large=8, smalls=(4,),
                         apps=["lu"])
        assert 0.0 <= out["values"]["lu (4V8)"] <= 1.0

    def test_figure8_small_scales(self):
        from repro.experiments import figure8

        out = figure8.run(trials=TRIALS, quiet=True, scales=(2, 4),
                          target=8, apps=["mg"])
        assert set(out) == {2, 4}
        for s in out.values():
            assert s["rmse"] >= 0 and s["normalized_time"] > 0

    def test_sensitivity_harness(self):
        from repro.experiments import sensitivity

        out = sensitivity.run(trials=40, quiet=True)
        for rep in out.values():
            assert "mantissa" in rep["bit_field"]

    def test_cli_table1(self, capsys):
        assert cli_main(["table1", "--trials", "4"]) == 0
        assert "Table 1" in capsys.readouterr().out
