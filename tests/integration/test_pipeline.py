"""End-to-end integration: campaigns -> model inputs -> prediction."""

import numpy as np
import pytest

from repro.apps import available_apps, get_app, paper_apps
from repro.apps.cg import CGApp
from repro.fi import Deployment, run_campaign
from repro.fi.campaign import CampaignResult
from repro.model.predictor import PredictionInputs, ResiliencePredictor
from repro.model.propagation import PropagationProfile
from repro.model.result import FaultInjectionResult
from repro.taint.region import Region

TRIALS = 40


@pytest.fixture(scope="module")
def app():
    return CGApp(n=128, nnz_per_row=16, niter=1, cg_iters=5)


@pytest.fixture(scope="module")
def small(app) -> CampaignResult:
    return run_campaign(app, Deployment(nprocs=4, trials=TRIALS, seed=21))


class TestEndToEndPrediction:
    def test_pipeline(self, app, small):
        serial = {}
        for x in (1, 8, 12, 16):
            dep = Deployment(
                nprocs=1, trials=TRIALS, n_errors=x, region=Region.COMMON,
                seed=100 + x,
            )
            serial[x] = FaultInjectionResult.from_campaign(run_campaign(app, dep))
        probe_dep = Deployment(
            nprocs=1, trials=TRIALS, n_errors=4, region=Region.COMMON, seed=104
        )
        probe = FaultInjectionResult.from_campaign(run_campaign(app, probe_dep))
        inputs = PredictionInputs(
            serial_samples=serial,
            small_campaign=small,
            unique_fractions={4: small.parallel_unique_fraction},
            serial_probe=probe,
        )
        predictor = ResiliencePredictor(inputs)
        predicted = predictor.predict(16)
        measured = FaultInjectionResult.from_campaign(
            run_campaign(app, Deployment(nprocs=16, trials=TRIALS, seed=55))
        )
        assert 0.0 <= predicted.success <= 1.0
        # shape claim: with these trial counts the prediction lands within
        # a wide but meaningful band of the measurement
        assert abs(predicted.success - measured.success) < 0.35

    def test_propagation_profiles_consistent(self, small):
        prof = PropagationProfile.from_campaign(small)
        assert sum(prof.probabilities) == pytest.approx(1.0)
        assert prof.r(1) > 0  # some flips always stay local


class TestRegistrySmoke:
    @pytest.mark.parametrize("name", available_apps())
    def test_every_registered_config_runs_and_verifies(self, name):
        app = get_app(name)
        ref = app.reference_output(1)
        par = app.reference_output(4)
        assert app.verify(par, ref)

    def test_paper_apps_subset(self):
        assert set(paper_apps()) <= set(available_apps())

    @pytest.mark.parametrize("name", paper_apps())
    def test_tiny_campaign_all_apps(self, name):
        app = get_app(name)
        res = run_campaign(app, Deployment(nprocs=4, trials=8, seed=9))
        assert res.n_trials == 8
        assert 0 <= res.success_rate <= 1


class TestCrossScaleInvariants:
    def test_strong_scaling_same_answer(self, app):
        """The same global problem at every scale (paper §2)."""
        outs = [app.reference_output(p) for p in (1, 2, 4, 8, 16)]
        zetas = [o["zeta"] for o in outs]
        assert np.ptp(zetas) < 1e-9

    def test_contamination_never_exceeds_nprocs(self, app):
        res = run_campaign(app, Deployment(nprocs=8, trials=30, seed=77))
        assert all(1 <= n <= 8 for n in res.propagation_counts())

    def test_zero_error_runs_match_reference(self, app):
        """Profiling pass is fault-free: repeated references identical."""
        a = app.reference_output(4)
        b = app.reference_output(4)
        assert a == b
