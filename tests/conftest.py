"""Shared fixtures: cache isolation and small deterministic helpers."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.fi.plan import InjectionPlan, PlannedFlip
from repro.fi.tracer import Tracer, TracerMode
from repro.taint.ops import FPOps
from repro.taint.region import Region
from repro.taint.tracer_api import Operand

# Helper modules under tests/ that child processes run directly; excluded
# from collection explicitly, not just by naming convention.
collect_ignore = [
    "unit/engine_child.py",
    "unit/adaptive_child.py",
    "unit/distributed_child.py",
]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep campaign caching away from the repo's working directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch) -> Path:
    """An isolated, *inspectable* campaign cache directory.

    The autouse fixture above already isolates caching; use this one in
    tests that assert on the cache's contents (entry counts, raw JSON
    bytes).  Returns the directory ``REPRO_CACHE_DIR`` points at.
    """
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    monkeypatch.setenv("REPRO_CACHE", "1")
    return cache


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fp():
    """Un-traced FP ops (NullSink)."""
    return FPOps()


def make_inject_fp(
    index: int,
    operand: Operand = Operand.A,
    bit: int = 51,
    rank: int = 0,
    region: Region = Region.COMMON,
    kind_region: Region | None = None,
) -> tuple[FPOps, Tracer]:
    """FPOps wired to a tracer that flips one planned instruction."""
    plan = InjectionPlan(
        flips=(
            PlannedFlip(rank=rank, region=region, index=index, operand=operand, bit=bit),
        )
    )
    tracer = Tracer(TracerMode.INJECT, plan)
    return FPOps(tracer, rank=rank), tracer


@pytest.fixture
def make_injector():
    return make_inject_fp
