"""Regenerate the BitFlipModel byte-identity goldens.

Run from the repository root::

    PYTHONPATH=src python tests/goldens/gen_bitflip_goldens.py

Captures, for a small CG and MG campaign at jobs=1 / lanes=1:

* ``<app>.provenance.jsonl`` — the provenance sidecar, byte-exact;
* ``<app>.events.jsonl`` — the main trace with wall-clock fields
  (``ts``, ``duration_s``, ``profile_time``, ``injection_time``)
  stripped, one canonical JSON object per line;
* ``<app>.joint.json`` — the joint distribution in insertion order.

The goldens were produced by the pre-scenario-refactor bit-flip
pipeline; ``tests/unit/test_scenarios.py`` asserts the refactored
:class:`BitFlipModel` reproduces them byte-for-byte for any
jobs × lanes × resume combination.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: one (app, deployment-kwargs) pair per golden set
CASES = {
    "cg": dict(nprocs=4, trials=24, seed=7),
    "mg": dict(nprocs=4, trials=24, seed=7),
}

#: wall-clock fields stripped from main-trace events before comparison
VOLATILE_FIELDS = ("ts", "duration_s", "profile_time", "injection_time")


def strip_volatile(line: str) -> str:
    """Canonicalize one trace line: drop wall-clock fields, sort keys."""
    blob = json.loads(line)
    for key in VOLATILE_FIELDS:
        blob.pop(key, None)
    return json.dumps(blob, sort_keys=True)


def generate(out_dir: Path = GOLDEN_DIR) -> None:
    import tempfile

    from repro import obs
    from repro.apps import get_app
    from repro.fi.campaign import Deployment, run_campaign
    from repro.obs.provenance import provenance_path

    for name, kwargs in CASES.items():
        app = get_app(name)
        deployment = Deployment(**kwargs)
        with tempfile.TemporaryDirectory() as tmp:
            trace = Path(tmp) / "run.jsonl"
            previous = obs.get_recorder()
            recorder = obs.configure(trace_path=trace)
            try:
                result = run_campaign(app, deployment, jobs=1, lanes=1)
            finally:
                obs.set_recorder(previous)
                recorder.close()
            (out_dir / f"{name}.provenance.jsonl").write_bytes(
                provenance_path(trace).read_bytes()
            )
            stripped = "".join(
                strip_volatile(line) + "\n"
                for line in trace.read_text().splitlines()
            )
            (out_dir / f"{name}.events.jsonl").write_text(stripped)
        joint = [
            [outcome.value, ncont, activated, count]
            for (outcome, ncont, activated), count in result.joint.items()
        ]
        (out_dir / f"{name}.joint.json").write_text(
            json.dumps(joint, indent=1) + "\n"
        )
        print(f"{name}: {result.n_trials} trials, joint={len(joint)} cells")


if __name__ == "__main__":
    generate()
